"""Reverse-mode automatic differentiation over numpy arrays.

This module is the computational substrate for the whole reproduction:
the paper trains its models with PyTorch, which is unavailable offline,
so we provide a small but fully tested autograd engine with the same
semantics (define-by-run graph, broadcasting-aware gradients,
accumulation into leaf tensors).

The public entry point is :class:`Tensor`.  Primitive operations live in
:mod:`repro.tensor.ops`; composite, numerically stable functions
(``sigmoid``, ``logsumexp``, ``l2_normalize`` ...) live in
:mod:`repro.tensor.functional`.

Fused kernels — the fast-path contract
--------------------------------------
:mod:`repro.tensor.functional` additionally provides *fused* primitives
(``fused_logmeanexp``, ``fused_softmax_loss``, ``fused_bsl_loss``,
``fused_infonce_loss``).  A fused kernel collapses a composite
expression that would otherwise build ~10 graph nodes into a **single**
node: the forward pass is one numpy evaluation of the whole expression
and the backward pass is one hand-derived vector-Jacobian product.

The contract every fused kernel must satisfy:

1. **Value equivalence** — for all inputs in the domain of the
   compositional expression, the fused forward agrees with the
   compositional forward to within a few ULPs (tests enforce ≤ 1e-10
   relative); both use the same max-shift stabilisation, so extreme
   logits behave identically.
2. **Gradient equivalence** — the fused VJP agrees with both the
   compositional autograd gradient and central finite differences to
   ≤ 1e-6 absolute (``tests/test_tensor_fused.py`` gradchecks every
   kernel, including broadcast and single-row edge cases).
3. **Oracle retention** — the compositional implementation is never
   deleted; callers (the loss classes) keep a ``fused=False`` escape
   hatch so the slow path remains the executable reference oracle.

To add a new fused VJP: write the compositional version first, derive
the closed-form gradient, implement forward+backward as one
``ops._node`` call caching only what backward needs, then register a
gradcheck against the compositional oracle in
``tests/test_tensor_fused.py`` before switching any caller's default.

Row-sparse gradients
--------------------
``ops.take_rows(..., sparse_grad=True)`` makes the embedding-lookup
backward emit a coalesced :class:`~repro.tensor.sparse.RowSparseGrad`
instead of a dense scatter.  The engine keeps such gradients sparse
only on the direct path into a leaf: sparse + sparse accumulation
merges, sparse + dense densifies, and a sparse gradient flowing into
any *interior* node is densified before that node's backward runs —
the escape hatch that keeps every dense VJP valid (see
``docs/training.md`` for the full contract and the sparse optimizers).

In-place data versioning
------------------------
Code that mutates ``Tensor.data`` buffers in place (optimizer steps,
checkpoint restores, norm projections) must call
:func:`bump_data_version` afterwards; caches keyed on model parameters
(e.g. :class:`repro.graph.propagation.PropagationCache`) compare
:func:`data_version` tokens to detect staleness.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "as_tensor", "unbroadcast", "no_grad", "is_grad_enabled",
           "data_version", "bump_data_version"]

_GRAD_ENABLED = [True]

# Monotonic counter over in-place mutations of tensor data buffers.
# See the module docstring ("In-place data versioning") for the contract.
_DATA_VERSION = [0]


def data_version() -> int:
    """Current global data-version token (changes after any in-place edit)."""
    return _DATA_VERSION[0]


def bump_data_version() -> int:
    """Advance the data-version token; call after mutating ``.data`` in place."""
    _DATA_VERSION[0] += 1
    return _DATA_VERSION[0]


class no_grad:
    """Context manager that disables graph construction.

    Inside a ``with no_grad():`` block every operation returns a detached
    tensor, mirroring ``torch.no_grad``.  Used by evaluation code to avoid
    keeping training graphs alive.
    """

    def __enter__(self):
        self._prev = _GRAD_ENABLED[0]
        _GRAD_ENABLED[0] = False
        return self

    def __exit__(self, exc_type, exc, tb):
        _GRAD_ENABLED[0] = self._prev
        return False


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED[0]


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    Numpy broadcasting implicitly expands operands; the vector-Jacobian
    product of a broadcast is a sum over the expanded axes.  This helper
    reverses any standard numpy broadcast.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus gradient bookkeeping.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Stored as ``float64`` unless the
        input already has a floating dtype.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, _parents=(), _backward=None,
                 name: str | None = None):
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        self.data = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward = _backward
        self._parents = tuple(_parents) if is_grad_enabled() else ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a python float."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ones, which for a scalar loss is
            the conventional ``dL/dL = 1``.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        # Iterative DFS: recursion would overflow on deep graphs (e.g. many
        # stacked propagation layers or long training loops kept alive).
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node.requires_grad and not node._parents:
                node.grad = g if node.grad is None else node.grad + g
            if node._backward is None:
                continue
            if isinstance(g, RowSparseGrad):
                # A row-sparse gradient (from ``take_rows(sparse_grad=
                # True)``) stays sparse only while it flows into a leaf.
                # Interior nodes (graph propagation, whole-table
                # normalization, ...) receive the dense equivalent — the
                # escape hatch that keeps every existing backward VJP
                # valid without sparse-aware rewrites.
                g = g.densify()
            parent_grads = node._backward(g)
            for parent, pg in zip(node._parents, parent_grads):
                if pg is None:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pg
                else:
                    grads[key] = pg

    # ------------------------------------------------------------------
    # Operator overloads (implemented in repro.tensor.ops)
    # ------------------------------------------------------------------
    def __add__(self, other):
        return ops.add(self, other)

    def __radd__(self, other):
        return ops.add(other, self)

    def __sub__(self, other):
        return ops.sub(self, other)

    def __rsub__(self, other):
        return ops.sub(other, self)

    def __mul__(self, other):
        return ops.mul(self, other)

    def __rmul__(self, other):
        return ops.mul(other, self)

    def __truediv__(self, other):
        return ops.div(self, other)

    def __rtruediv__(self, other):
        return ops.div(other, self)

    def __neg__(self):
        return ops.neg(self)

    def __pow__(self, exponent):
        return ops.power(self, exponent)

    def __matmul__(self, other):
        return ops.matmul(self, other)

    def __getitem__(self, index):
        return ops.getitem(self, index)

    # Comparisons produce plain (non-differentiable) numpy arrays.
    def __gt__(self, other):
        return self.data > _raw(other)

    def __lt__(self, other):
        return self.data < _raw(other)

    def __ge__(self, other):
        return self.data >= _raw(other)

    def __le__(self, other):
        return self.data <= _raw(other)

    # ------------------------------------------------------------------
    # Method aliases for common ops
    # ------------------------------------------------------------------
    def exp(self):
        return ops.exp(self)

    def log(self):
        return ops.log(self)

    def sqrt(self):
        return ops.sqrt(self)

    def tanh(self):
        return ops.tanh(self)

    def abs(self):
        return ops.abs_(self)

    def sum(self, axis=None, keepdims=False):
        return ops.sum_(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        return ops.mean_(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims=False):
        return ops.max_(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims=False):
        return ops.min_(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes=None):
        return ops.transpose(self, axes)

    @property
    def T(self):
        return ops.transpose(self, None)

    def clip(self, low=None, high=None):
        return ops.clip(self, low, high)

    def unsqueeze(self, axis):
        """Insert a length-1 axis (torch-style helper)."""
        new_shape = list(self.shape)
        if axis < 0:
            axis += self.ndim + 1
        new_shape.insert(axis, 1)
        return ops.reshape(self, tuple(new_shape))

    def squeeze(self, axis):
        new_shape = list(self.shape)
        if new_shape[axis] != 1:
            raise ValueError(f"cannot squeeze axis {axis} of shape {self.shape}")
        del new_shape[axis]
        return ops.reshape(self, tuple(new_shape))


def as_tensor(value, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def _raw(value):
    return value.data if isinstance(value, Tensor) else value


# Imported at the bottom to resolve the Tensor <-> ops cycle.
from repro.tensor import ops  # noqa: E402  (intentional late import)
from repro.tensor.sparse import RowSparseGrad  # noqa: E402
