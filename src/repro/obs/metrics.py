"""Thread-safe metrics core: Counter / Gauge / Histogram + registry.

Design constraints (see ``docs/observability.md``):

* **Zero dependencies.** Pure stdlib — the serving hot path must be
  able to import this without pulling in numpy.
* **Deterministic, mergeable histograms.** Every histogram uses a
  *fixed* log-spaced boundary ladder, so a quantile estimate is a pure
  function of the per-bucket counts.  Merging two histograms is just
  adding their count vectors — associative and commutative — which is
  what lets per-shard / per-worker histograms be combined without any
  loss relative to observing into one shared instrument.
* **Swappable global registry with a true off switch.** Call sites
  fetch instruments from :func:`get_registry`.  A registry constructed
  with ``enabled=False`` hands out *shared singleton* no-op instruments
  (the identity fast path: every disabled counter **is** the same
  object), so disabling telemetry removes the bookkeeping, not just the
  exposition.
"""

from __future__ import annotations

import bisect
import contextlib
import math
import random
import re
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BOUNDARIES",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "Reservoir",
    "get_registry",
    "set_registry",
    "use_registry",
]

# ``layer.component.metric`` — lowercase, digits and underscores inside
# segments, dots between them.  The Prometheus exporter maps dots to
# underscores, so this charset round-trips into every exposition format.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")

# Fixed ladder: 16 buckets per decade over [1e-6, 1e6] (values in any
# unit — seconds, milliseconds, rows — land somewhere sensible), plus an
# implicit overflow bucket.  Fixed boundaries are what make quantiles
# deterministic and merges associative, so instruments never accept
# custom ladders silently: pass ``boundaries=`` explicitly or get this.
DEFAULT_BOUNDARIES = tuple(10.0 ** (k / 16.0) for k in range(-96, 97))


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"bad instrument name {name!r}: want dot-separated lowercase "
            "segments like 'serve.service.cache_hits'")
    return name


class Counter:
    """Monotonically increasing count (floats allowed for second-sums)."""

    kind = "counter"
    __slots__ = ("name", "help", "labels", "_lock", "_value")

    def __init__(self, name: str = "", help: str = "",  # noqa: A002
                 labels: tuple = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def _set(self, value) -> None:
        """Backdoor for registry-backed stats views (``stats.x += 1``
        compiles to a read-modify-write through the property setter) and
        for ``reset()``-style APIs.  Not part of the public counter
        contract — counters only go up through :meth:`inc`."""
        with self._lock:
            self._value = value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value})"


class Gauge:
    """A value that can go up and down (staleness, batch size, ...)."""

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "_lock", "_value")

    def __init__(self, name: str = "", help: str = "",  # noqa: A002
                 labels: tuple = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount=1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount=1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self):
        return self._value

    _set = set

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self._value})"


class Histogram:
    """Fixed-boundary histogram with deterministic quantile estimates.

    Bucket ``i`` counts observations ``v`` with
    ``boundaries[i-1] < v <= boundaries[i]`` (bucket 0 additionally
    absorbs everything at or below the first boundary, including zeros
    and negatives); one extra overflow bucket catches values above the
    last boundary.  :meth:`quantile` returns the *upper edge* of the
    bucket holding the target rank — a deterministic, conservative
    estimate that depends only on the counts, so it is stable across
    runs and invariant under merge order.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "labels", "boundaries", "_lock",
                 "_counts", "_count", "_sum")

    def __init__(self, name: str = "", help: str = "",  # noqa: A002
                 labels: tuple = (), boundaries=None):
        if boundaries is None:
            boundaries = DEFAULT_BOUNDARIES
        boundaries = tuple(float(b) for b in boundaries)
        if not boundaries:
            raise ValueError("histogram needs at least one boundary")
        if any(b2 <= b1 for b1, b2 in zip(boundaries, boundaries[1:])):
            raise ValueError("boundaries must be strictly increasing")
        if not all(math.isfinite(b) for b in boundaries):
            raise ValueError("boundaries must be finite")
        self.name = name
        self.help = help
        self.labels = labels
        self.boundaries = boundaries
        self._lock = threading.Lock()
        self._counts = [0] * (len(boundaries) + 1)
        self._count = 0
        self._sum = 0.0

    def observe(self, value) -> None:
        idx = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> list:
        """Per-bucket (non-cumulative) counts; last entry is overflow."""
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """Upper bucket edge at rank ``ceil(q * count)``; 0.0 if empty.

        Overflow observations report the last boundary — the estimate
        stays finite by construction (``scripts/check_bench.py`` rejects
        non-finite numbers in committed benchmark files).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile wants q in [0, 1], got {q}")
        with self._lock:
            count = self._count
            counts = list(self._counts)
        if count == 0:
            return 0.0
        target = max(1, math.ceil(q * count))
        cum = 0
        for idx, n in enumerate(counts):
            cum += n
            if cum >= target:
                return self.boundaries[min(idx, len(self.boundaries) - 1)]
        return self.boundaries[-1]  # unreachable; counts sum to count

    def quantiles(self, qs=(0.5, 0.9, 0.99)) -> dict:
        return {q: self.quantile(q) for q in qs}

    def merge(self, other: "Histogram") -> "Histogram":
        """Combine two sub-histograms into a new one (counts just add).

        Requires identical boundary ladders; the result's quantiles
        equal those of a single histogram fed both observation streams,
        and the operation is associative — merge order cannot change
        any estimate.
        """
        if self.boundaries != other.boundaries:
            raise ValueError("cannot merge histograms with different "
                             "bucket boundaries")
        merged = Histogram(self.name, self.help, self.labels,
                           boundaries=self.boundaries)
        with self._lock:
            mine = list(self._counts)
            my_count, my_sum = self._count, self._sum
        with other._lock:
            theirs = list(other._counts)
            their_count, their_sum = other._count, other._sum
        merged._counts = [a + b for a, b in zip(mine, theirs)]
        merged._count = my_count + their_count
        merged._sum = my_sum + their_sum
        return merged

    def snapshot(self) -> dict:
        """JSON-friendly state: count, sum, and non-empty buckets only
        (``le`` upper edge -> count; the overflow bucket reports
        ``le`` = ``"+Inf"``)."""
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
        buckets = []
        for idx, n in enumerate(counts):
            if n:
                le = (self.boundaries[idx] if idx < len(self.boundaries)
                      else "+Inf")
                buckets.append({"le": le, "count": n})
        return {"count": count, "sum": total, "buckets": buckets}

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self._count})"


class _NullCounter:
    """Shared no-op counter handed out by a disabled registry."""

    kind = "counter"
    name = ""
    help = ""
    labels = ()
    __slots__ = ()
    value = 0

    def inc(self, amount=1) -> None:
        pass

    def _set(self, value) -> None:
        pass

    def __repr__(self) -> str:
        return "NULL_COUNTER"


class _NullGauge:
    kind = "gauge"
    name = ""
    help = ""
    labels = ()
    __slots__ = ()
    value = 0

    def set(self, value) -> None:
        pass

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass

    _set = set

    def __repr__(self) -> str:
        return "NULL_GAUGE"


class _NullHistogram:
    kind = "histogram"
    name = ""
    help = ""
    labels = ()
    boundaries = DEFAULT_BOUNDARIES
    __slots__ = ()
    count = 0
    sum = 0.0

    def observe(self, value) -> None:
        pass

    def bucket_counts(self) -> list:
        return []

    def quantile(self, q: float) -> float:
        return 0.0

    def quantiles(self, qs=(0.5, 0.9, 0.99)) -> dict:
        return {q: 0.0 for q in qs}

    def merge(self, other):
        return other

    def snapshot(self) -> dict:
        return {"count": 0, "sum": 0.0, "buckets": []}

    def __repr__(self) -> str:
        return "NULL_HISTOGRAM"


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Get-or-create instrument store, keyed on ``(name, labels)``.

    A registry is either *enabled* (real instruments, one per
    name+labels combination, kind-checked) or *disabled* (every request
    returns the module-level null singleton of the right kind — the
    identity fast path that makes "telemetry off" genuinely free).

    The process-global registry (:func:`get_registry`) is enabled by
    default; swap it with :func:`set_registry` or scope a replacement
    with :func:`use_registry`.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._instruments = {}
        self._kinds = {}
        self._helps = {}
        self._instances = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "",  # noqa: A002
                labels: dict | None = None) -> Counter:
        return self._get(Counter, NULL_COUNTER, name, help, labels)

    def gauge(self, name: str, help: str = "",  # noqa: A002
              labels: dict | None = None) -> Gauge:
        return self._get(Gauge, NULL_GAUGE, name, help, labels)

    def histogram(self, name: str, help: str = "",  # noqa: A002
                  labels: dict | None = None,
                  boundaries=None) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._get(Histogram, NULL_HISTOGRAM, name, help, labels,
                         boundaries=boundaries)

    def _get(self, cls, null, name, help_text, labels, **kwargs):
        if not self.enabled:
            return null
        _check_name(name)
        label_items = tuple(sorted((labels or {}).items()))
        for key, value in label_items:
            if not isinstance(key, str) or not isinstance(value, str):
                raise TypeError(f"labels must be str -> str, got "
                                f"{key!r}={value!r}")
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is not None and existing_kind != cls.kind:
                raise ValueError(
                    f"instrument {name!r} already registered as "
                    f"{existing_kind}, cannot reuse it as {cls.kind}")
            instrument = self._instruments.get((name, label_items))
            if instrument is None:
                instrument = cls(name, help_text, label_items, **kwargs)
                self._instruments[(name, label_items)] = instrument
                self._kinds[name] = cls.kind
                if help_text:
                    self._helps.setdefault(name, help_text)
            return instrument

    # ------------------------------------------------------------------
    def next_instance(self, prefix: str) -> str:
        """Process-unique instance index for ``prefix`` ("0", "1", ...).

        Stats views label their instruments with this so two services in
        one process never write to the same time series.
        """
        with self._lock:
            idx = self._instances.get(prefix, 0)
            self._instances[prefix] = idx + 1
            return str(idx)

    def collect(self) -> list:
        """All instruments, sorted by (name, labels) for stable output."""
        with self._lock:
            items = sorted(self._instruments.items())
        return [instrument for _key, instrument in items]

    def help_for(self, name: str) -> str:
        return self._helps.get(name, "")

    def snapshot(self) -> list:
        """JSON-friendly dump of every instrument."""
        out = []
        for instrument in self.collect():
            entry = {"name": instrument.name, "kind": instrument.kind,
                     "labels": dict(instrument.labels)}
            if instrument.kind == "histogram":
                entry.update(instrument.snapshot())
            else:
                entry["value"] = instrument.value
            out.append(entry)
        return out

    def reset(self) -> None:
        """Drop every instrument (tests and fresh bench lanes)."""
        with self._lock:
            self._instruments.clear()
            self._kinds.clear()
            self._helps.clear()
            self._instances.clear()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"MetricsRegistry({state}, "
                f"instruments={len(self._instruments)})")


NULL_REGISTRY = MetricsRegistry(enabled=False)

_DEFAULT_REGISTRY = MetricsRegistry(enabled=True)
_registry = _DEFAULT_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-global registry (enabled by default)."""
    return _registry


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Swap the global registry; returns the previous one.

    ``set_registry(None)`` restores the built-in default registry;
    ``set_registry(NULL_REGISTRY)`` turns telemetry off for every call
    site that fetches instruments afterwards.
    """
    global _registry
    previous = _registry
    _registry = _DEFAULT_REGISTRY if registry is None else registry
    return previous


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry | None):
    """Scope a registry swap: ``with use_registry(MetricsRegistry()):``."""
    previous = set_registry(registry)
    try:
        yield get_registry()
    finally:
        set_registry(previous)


class Reservoir:
    """Fixed-size uniform sample of a stream (Vitter's algorithm R).

    Seeded and deterministic: the same value stream through the same
    seed yields the same retained sample.  Memory is bounded by
    ``capacity`` regardless of how many values are offered, which is
    what keeps long serving soaks from growing RSS while still letting
    quantiles summarize the *whole* lifetime, not just a recent window.
    """

    __slots__ = ("capacity", "_rng", "_values", "_seen", "_lock")

    def __init__(self, capacity: int = 2048, seed: int = 0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._values = []
        self._seen = 0
        self._lock = threading.Lock()

    def add(self, value) -> None:
        with self._lock:
            self._seen += 1
            if len(self._values) < self.capacity:
                self._values.append(value)
            else:
                slot = self._rng.randrange(self._seen)
                if slot < self.capacity:
                    self._values[slot] = value

    def values(self) -> list:
        with self._lock:
            return list(self._values)

    @property
    def seen(self) -> int:
        """Total values offered (not just the retained sample)."""
        return self._seen

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return (f"Reservoir(capacity={self.capacity}, "
                f"kept={len(self._values)}, seen={self._seen})")
