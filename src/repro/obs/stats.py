"""Registry-backed stats views.

The serving stack predates the metrics registry; its public telemetry
objects (``ServiceStats``, ``RouterStats``, ``RuntimeStats``) started
as plain mutable dataclasses read and written attribute-style
(``stats.cache_hits += 1``).  :class:`RegistryBackedStats` re-homes
those fields as *views over registry counters* without changing the
API: each declared field becomes a property whose getter reads the
instrument and whose setter writes it, so existing ``+=`` call sites,
attribute reads in tests, and derived properties keep working while
every count is simultaneously visible to the exporters.

Each view instance labels its instruments with a process-unique
``instance`` index so two services in one process never share a time
series.  Under a disabled registry the instruments are the shared
no-op singletons: the view stays constructible and readable (every
field reports 0) while recording nothing.
"""

from __future__ import annotations

from repro.obs.metrics import get_registry

__all__ = ["RegistryBackedStats"]


def _field_property(field: str) -> property:
    def _get(self):
        return self._instruments[field].value

    def _set(self, value):
        self._instruments[field]._set(value)

    return property(_get, _set)


class RegistryBackedStats:
    """Subclass with ``_PREFIX`` and ``_COUNTERS = {field: help}``.

    Construction fetches one counter per field from the *current*
    global registry (``<prefix>.<field>``, labeled with a fresh
    ``instance`` index) and accepts keyword initial values for
    dataclass-constructor compatibility.
    """

    _PREFIX = ""
    _COUNTERS: dict = {}

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        for field in cls._COUNTERS:
            setattr(cls, field, _field_property(field))

    def __init__(self, **initial):
        registry = get_registry()
        labels = None
        if registry.enabled:
            labels = {"instance": registry.next_instance(self._PREFIX)}
        #: instance labels of this view's instruments — owners reuse
        #: these for their *other* instruments (latency histograms,
        #: gauges) so one service is one instance across every family.
        self.obs_labels = labels
        self._instruments = {
            field: registry.counter(f"{self._PREFIX}.{field}", help_text,
                                    labels=labels)
            for field, help_text in self._COUNTERS.items()}
        for field, value in initial.items():
            if field not in self._COUNTERS:
                raise TypeError(
                    f"{type(self).__name__} has no field {field!r}")
            if value:
                self._instruments[field]._set(value)

    def _reset_counters(self) -> None:
        for instrument in self._instruments.values():
            instrument._set(0)

    def __repr__(self) -> str:
        body = ", ".join(f"{field}={getattr(self, field)!r}"
                         for field in self._COUNTERS)
        return f"{type(self).__name__}({body})"
