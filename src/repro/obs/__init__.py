"""Unified observability layer: metrics registry + request tracing.

Zero-dependency (stdlib-only) telemetry substrate shared by the serving
and training stacks:

* :mod:`repro.obs.metrics` — thread-safe ``Counter``/``Gauge``/
  ``Histogram`` instruments behind a process-global but swappable
  :class:`MetricsRegistry`.  Histograms use fixed log-spaced bucket
  boundaries so quantile estimates are deterministic and mergeable
  across shards and workers.  A disabled registry hands out shared
  no-op instruments, so telemetry can be switched off wholesale.
* :mod:`repro.obs.trace` — request-scoped ``Span`` trees on the
  monotonic clock, opt-in via :func:`tracing`, JSON-serializable.
* :mod:`repro.obs.export` — Prometheus v0.0.4 text exposition
  (:mod:`repro.obs.export.prom`) and JSON snapshots
  (:mod:`repro.obs.export.json`).

Instrument names follow ``<layer>.<component>.<metric>`` (for example
``serve.service.cache_hits``); span names follow
``<layer>.<component>.<phase>`` — see ``docs/observability.md``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    Reservoir,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.trace import (
    Span,
    Tracer,
    format_span_tree,
    get_tracer,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Reservoir",
    "get_registry",
    "set_registry",
    "use_registry",
    "Span",
    "Tracer",
    "format_span_tree",
    "get_tracer",
    "tracing",
]
