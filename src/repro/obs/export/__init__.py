"""Exposition formats for the metrics registry.

* :mod:`repro.obs.export.prom` — Prometheus text format v0.0.4.
* :mod:`repro.obs.export.json` — JSON snapshot (``bsl-obs-metrics/v1``).
"""
