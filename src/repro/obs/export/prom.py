"""Prometheus text exposition format v0.0.4 for the metrics registry.

``render()`` turns a :class:`~repro.obs.metrics.MetricsRegistry` into
the scrape-endpoint text format: one ``# HELP`` / ``# TYPE`` pair per
metric family, counters suffixed ``_total``, histograms expanded into
cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.
Instrument names map dots to underscores (``serve.service.cache_hits``
-> ``serve_service_cache_hits_total``).

``validate_exposition()`` is the inverse smoke check used by
``scripts/verify.sh``: it re-parses rendered text and reports every
malformed HELP/TYPE line, duplicate family, unparseable sample, or
sample that belongs to no declared family.
"""

from __future__ import annotations

import re

from repro.obs import metrics as _metrics

__all__ = ["render", "validate_exposition", "prom_name"]


def prom_name(name: str) -> str:
    """Registry instrument name -> Prometheus metric family name."""
    return name.replace(".", "_").replace("-", "_")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _label_str(label_items, extra=None) -> str:
    pairs = list(label_items)
    if extra:
        pairs = pairs + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape_label(str(value))}"'
                    for key, value in pairs)
    return "{" + body + "}"


def render(registry=None) -> str:
    """Text exposition of every instrument in ``registry`` (global by
    default).  Families are emitted in sorted-name order; instruments
    sharing a family name differ only in labels."""
    registry = registry or _metrics.get_registry()
    by_name: dict = {}
    for instrument in registry.collect():
        by_name.setdefault(instrument.name, []).append(instrument)

    lines = []
    for name in sorted(by_name):
        instruments = by_name[name]
        kind = instruments[0].kind
        family = prom_name(name)
        help_text = registry.help_for(name) or instruments[0].help or name
        if kind == "counter":
            family += "_total"
        lines.append(f"# HELP {family} {_escape_help(help_text)}")
        lines.append(f"# TYPE {family} {kind}")
        for instrument in instruments:
            labels = instrument.labels
            if kind == "histogram":
                # Buckets are cumulative, so any subset of boundaries
                # plus the mandatory +Inf bucket is valid exposition;
                # emitting only edges where the count changes keeps a
                # 193-bucket ladder from dominating the scrape.
                cumulative = 0
                counts = instrument.bucket_counts()
                for idx, count in enumerate(counts):
                    cumulative += count
                    if count and idx < len(instrument.boundaries):
                        le = _fmt(instrument.boundaries[idx])
                        lines.append(
                            f"{family}_bucket"
                            f"{_label_str(labels, [('le', le)])} "
                            f"{cumulative}")
                lines.append(
                    f"{family}_bucket"
                    f"{_label_str(labels, [('le', '+Inf')])} "
                    f"{instrument.count}")
                lines.append(f"{family}_sum{_label_str(labels)} "
                             f"{_fmt(instrument.sum)}")
                lines.append(f"{family}_count{_label_str(labels)} "
                             f"{instrument.count}")
            else:
                lines.append(f"{family}{_label_str(labels)} "
                             f"{_fmt(instrument.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


_HELP_RE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$")
_TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
                      r"(counter|gauge|histogram|summary|untyped)$")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" ([-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|[-+]?Inf|NaN)$")
_HIST_SUFFIX = re.compile(r"_(bucket|sum|count)$")


def validate_exposition(text: str) -> list:
    """Re-parse rendered exposition text; return a list of problems.

    Checks: every non-comment line parses as a sample, HELP/TYPE lines
    are well-formed and unique per family, and every sample resolves to
    a declared family (directly, or through a histogram suffix).
    An empty list means the scrape output is well-formed.
    """
    problems = []
    helps: set = set()
    types: dict = {}
    samples = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP"):
            match = _HELP_RE.match(line)
            if not match:
                problems.append(f"line {lineno}: malformed HELP: {line!r}")
                continue
            name = match.group(1)
            if name in helps:
                problems.append(f"line {lineno}: duplicate HELP for {name}")
            helps.add(name)
        elif line.startswith("# TYPE"):
            match = _TYPE_RE.match(line)
            if not match:
                problems.append(f"line {lineno}: malformed TYPE: {line!r}")
                continue
            name = match.group(1)
            if name in types:
                problems.append(f"line {lineno}: duplicate TYPE for {name}")
            types[name] = match.group(2)
        elif line.startswith("#"):
            continue  # free-form comment, allowed by the format
        else:
            match = _SAMPLE_RE.match(line)
            if not match:
                problems.append(f"line {lineno}: unparseable sample: "
                                f"{line!r}")
                continue
            samples.append((lineno, match.group(1)))
    for name in helps:
        if name not in types:
            problems.append(f"HELP without TYPE for {name}")
    for lineno, sample_name in samples:
        family = sample_name
        if family not in types:
            family = _HIST_SUFFIX.sub("", sample_name)
        if family not in types:
            problems.append(f"line {lineno}: sample {sample_name!r} has "
                            "no declared family")
        elif (family != sample_name
              and types.get(family) != "histogram"):
            problems.append(f"line {lineno}: suffixed sample "
                            f"{sample_name!r} on non-histogram family")
    return problems
