"""JSON snapshot exposition for the metrics registry.

Schema ``bsl-obs-metrics/v1``::

    {
      "schema": "bsl-obs-metrics/v1",
      "metrics": [
        {"name": "serve.service.cache_hits", "kind": "counter",
         "labels": {"instance": "0"}, "value": 42},
        {"name": "serve.runtime.latency_ms", "kind": "histogram",
         "labels": {}, "count": 10, "sum": 12.5,
         "buckets": [{"le": 1.333, "count": 10}]},
        ...
      ]
    }

Counters and gauges carry ``value``; histograms carry ``count`` /
``sum`` and their non-empty buckets (``le`` upper edge, ``"+Inf"`` for
overflow).  The dump is deterministic for a given registry state:
instruments are sorted by (name, labels).
"""

from __future__ import annotations

import json

from repro.obs import metrics as _metrics

__all__ = ["SCHEMA", "snapshot", "render"]

SCHEMA = "bsl-obs-metrics/v1"


def snapshot(registry=None) -> dict:
    """JSON-friendly dump of every instrument in ``registry``."""
    registry = registry or _metrics.get_registry()
    return {"schema": SCHEMA, "metrics": registry.snapshot()}


def render(registry=None, indent: int = 2) -> str:
    return json.dumps(snapshot(registry), indent=indent, sort_keys=False)
