"""Request-scoped span trees on the monotonic clock.

Opt-in tracing for the serving and training paths::

    from repro.obs import get_tracer, tracing

    with tracing():                       # flips the opt-in flag
        service.recommend(users, k=10)
        root = get_tracer().last_trace()  # Span tree, JSON-serializable

Span names follow ``<layer>.<component>.<phase>`` (for example
``serve.router.gather``); the full taxonomy lives in
``docs/observability.md``.

Two recording styles:

* :meth:`Tracer.span` — a context manager that reads the clock on
  enter/exit.  Call sites that also feed timing counters reuse the
  span's own ``start_s``/``end_s`` readings, so the span tree and the
  stats counters are derived from the *same* clock samples and can
  never drift apart (pinned by ``tests/test_obs_integration.py``).
* :meth:`Tracer.record` — attach an already-timed interval with no
  extra clock reads, for call sites (router phase splits) that already
  hold the timestamps.

When the tracer is disabled, :meth:`Tracer.span` returns one shared
no-op context manager — no allocation, no clock reads — so tracing off
costs a single attribute check per call site.
"""

from __future__ import annotations

import collections
import threading
import time

__all__ = ["Span", "Tracer", "format_span_tree", "get_tracer", "tracing"]


class Span:
    """One timed phase: name, monotonic start/end, children, metadata."""

    __slots__ = ("name", "start_s", "end_s", "meta", "children")

    def __init__(self, name: str, start_s: float, meta: dict | None = None):
        self.name = name
        self.start_s = start_s
        self.end_s = None
        self.meta = meta or {}
        self.children = []

    @property
    def duration_ms(self) -> float:
        if self.end_s is None:
            return 0.0
        return (self.end_s - self.start_s) * 1e3

    def to_dict(self, origin_s: float | None = None) -> dict:
        """JSON-friendly tree; times are ms relative to the root start."""
        origin = self.start_s if origin_s is None else origin_s
        out = {
            "name": self.name,
            "start_ms": (self.start_s - origin) * 1e3,
            "duration_ms": self.duration_ms,
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [c.to_dict(origin) for c in self.children]
        return out

    def walk(self, depth: int = 0):
        """Yield ``(span, depth)`` over the subtree, pre-order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> list["Span"]:
        """Every span in the subtree (including self) with ``name``."""
        return [span for span, _ in self.walk() if span.name == name]

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, duration_ms={self.duration_ms:.3f}, "
                f"children={len(self.children)})")


class _NullSpanContext:
    """Shared disabled-path context manager: enters to ``None``."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_meta", "span")

    def __init__(self, tracer: "Tracer", name: str, meta: dict):
        self._tracer = tracer
        self._name = name
        self._meta = meta
        self.span = None

    def __enter__(self) -> Span:
        span = Span(self._name, time.perf_counter(), self._meta)
        self._tracer._push(span)
        self.span = span
        return span

    def __exit__(self, *exc):
        self.span.end_s = time.perf_counter()
        self._tracer._pop(self.span)
        return False


class Tracer:
    """Thread-local span stacks + a bounded ring of finished root spans.

    Disabled by default; flip :attr:`enabled` (or use the module-level
    :func:`tracing` context manager).  Each thread maintains its own
    open-span stack, so concurrent worker threads build independent
    trees; finished roots from all threads land in one shared ring of
    the most recent ``keep`` traces.
    """

    def __init__(self, keep: int = 32):
        if keep <= 0:
            raise ValueError(f"keep must be positive, got {keep}")
        self.enabled = False
        self._local = threading.local()
        self._roots = collections.deque(maxlen=keep)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def span(self, name: str, **meta):
        """Context manager timing a phase; yields the live ``Span`` (or
        ``None`` when tracing is off — call sites branch on that to
        fall back to their own clock reads)."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, meta)

    def record(self, name: str, start_s: float, end_s: float,
               **meta) -> Span | None:
        """Attach an already-timed span under the current open span (or
        as a root when none is open).  No clock reads."""
        if not self.enabled:
            return None
        span = Span(name, start_s, meta)
        span.end_s = end_s
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        return span

    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # exception unwound through nested spans
            del stack[stack.index(span):]
        if not stack:
            with self._lock:
                self._roots.append(span)

    # ------------------------------------------------------------------
    def last_trace(self) -> Span | None:
        """The most recently finished root span, if any."""
        with self._lock:
            return self._roots[-1] if self._roots else None

    def traces(self) -> list:
        """Finished root spans, oldest first (bounded ring)."""
        with self._lock:
            return list(self._roots)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, roots={len(self._roots)})"


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer (disabled by default)."""
    return _TRACER


class tracing:
    """Scope the opt-in flag: ``with tracing(): ...`` traces inside.

    Re-entrant; restores the previous flag state on exit.  Pass
    ``enabled=False`` to force tracing *off* inside the block (the
    telemetry-off benchmark lane uses this).
    """

    def __init__(self, enabled: bool = True, tracer: Tracer | None = None):
        self._enabled = enabled
        self._tracer = tracer or _TRACER
        self._previous = None

    def __enter__(self) -> Tracer:
        self._previous = self._tracer.enabled
        self._tracer.enabled = self._enabled
        return self._tracer

    def __exit__(self, *exc):
        self._tracer.enabled = self._previous
        return False


def format_span_tree(span: Span, unit: str = "ms") -> str:
    """Human-readable indented rendering for CLI output."""
    lines = []
    for node, depth in span.walk():
        meta = ""
        if node.meta:
            pairs = " ".join(f"{k}={v}" for k, v in sorted(node.meta.items()))
            meta = f"  [{pairs}]"
        lines.append(f"{'  ' * depth}{node.name:<32s} "
                     f"{node.duration_ms:10.3f} {unit}{meta}")
    return "\n".join(lines)
