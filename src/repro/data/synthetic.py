"""Synthetic implicit-feedback generator and dataset presets.

The paper evaluates on Yelp2018, Gowalla, Amazon-Book and MovieLens-1M
(Table I).  Those dumps are unavailable offline, so we generate datasets
from a latent-cluster preference model that preserves the properties the
paper's claims depend on:

* **Collaborative structure** — users and items belong to latent
  clusters; users interact mostly within their cluster, so embeddings
  that recover the clusters rank well (this is what makes Recall/NDCG a
  meaningful signal and what the t-SNE study of Figs. 10-11 visualizes).
* **Long-tail popularity** — item base popularity follows a Zipf law, so
  popularity bias and the fairness analysis (Figs. 4a / 5) apply.
* **Controllable noise** — the generator exposes the true affinity
  matrix, so false positives/negatives can be injected at exact rates
  (RQ2/RQ3) and measured against the ground truth.

Presets mirror Table I's *relative* shape at ~1/50 scale: MovieLens is
dense, Amazon is the sparsest, Yelp/Gowalla sit in between.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.tensor.random import ensure_rng

__all__ = ["SyntheticConfig", "SyntheticGenerator", "generate_dataset",
           "load_dataset", "DATASET_PRESETS", "dataset_names"]


@dataclass
class SyntheticConfig:
    """Knobs of the latent-cluster generator."""

    num_users: int = 400
    num_items: int = 500
    num_clusters: int = 10
    mean_interactions: float = 25.0
    #: Zipf exponent of the item base-popularity law; ~0.8-1.1 matches the
    #: long tails of the paper's datasets.
    popularity_exponent: float = 1.0
    #: Probability mass a user puts on their home cluster (rest spread
    #: over the others).  Higher = cleaner collaborative signal.
    cluster_affinity: float = 0.75
    #: Fraction of each user's interactions held out for testing.
    test_fraction: float = 0.2
    #: Fraction of each user's *training* interactions drawn uniformly at
    #: random instead of from their preference distribution.  This is the
    #: intrinsic label noise real implicit feedback carries (clickbait,
    #: mis-clicks, conformity) — the very premise of the paper.  The test
    #: split stays clean so measured metrics reflect true preference.
    train_noise: float = 0.15
    seed: int = 0
    name: str = "synthetic"

    def __post_init__(self):
        if self.num_clusters < 2:
            raise ValueError("need at least 2 clusters for collaborative signal")
        if not 0.0 < self.cluster_affinity <= 1.0:
            raise ValueError("cluster_affinity must lie in (0, 1]")
        if not 0.0 < self.test_fraction < 1.0:
            raise ValueError("test_fraction must lie in (0, 1)")
        if not 0.0 <= self.train_noise < 1.0:
            raise ValueError("train_noise must lie in [0, 1)")


class SyntheticGenerator:
    """Draws an :class:`InteractionDataset` from a latent preference model.

    The generative story: item ``i`` gets a cluster ``c(i)`` and a Zipf
    popularity weight; user ``u`` gets a home cluster and an affinity
    vector over clusters; the probability that ``u`` interacts with ``i``
    is proportional to ``affinity(u, c(i)) * pop(i)``.  Degrees are
    lognormal so some users are heavy (as in the real datasets).
    """

    def __init__(self, config: SyntheticConfig):
        self.config = config

    def generate(self) -> InteractionDataset:
        cfg = self.config
        rng = ensure_rng(cfg.seed)

        item_clusters = rng.integers(0, cfg.num_clusters, size=cfg.num_items)
        user_clusters = rng.integers(0, cfg.num_clusters, size=cfg.num_users)
        popularity = self._zipf_weights(cfg.num_items, cfg.popularity_exponent, rng)

        affinity = self._affinity_matrix(user_clusters, cfg, rng)
        # Per-user item distribution: affinity towards the item's cluster
        # times the item's global popularity.
        item_weight_by_cluster = popularity[None, :] * np.equal.outer(
            np.arange(cfg.num_clusters), item_clusters)

        degrees = self._degrees(cfg, rng)
        train_rows, test_rows = [], []
        for u in range(cfg.num_users):
            probs = affinity[u] @ item_weight_by_cluster
            probs /= probs.sum()
            k = min(degrees[u], cfg.num_items - 1)
            items = rng.choice(cfg.num_items, size=k, replace=False, p=probs)
            rng.shuffle(items)
            # Test items come from the clean preference draw.
            n_test = max(1, int(round(cfg.test_fraction * k)))
            for item in items[:n_test]:
                test_rows.append((u, item))
            # Training items: a train_noise fraction is replaced by
            # uniform random items (intrinsic false positives).
            train_items = items[n_test:]
            n_noise = int(round(cfg.train_noise * len(train_items)))
            if n_noise:
                forbidden = set(items.tolist())
                candidates = np.array(
                    [i for i in range(cfg.num_items) if i not in forbidden])
                if len(candidates) >= n_noise:
                    noise_items = rng.choice(candidates, size=n_noise,
                                             replace=False)
                    train_items = np.concatenate(
                        [train_items[: len(train_items) - n_noise],
                         noise_items])
            for item in train_items:
                train_rows.append((u, item))

        dataset = InteractionDataset(
            cfg.num_users, cfg.num_items,
            np.asarray(train_rows, dtype=np.int64),
            np.asarray(test_rows, dtype=np.int64),
            name=cfg.name, item_clusters=item_clusters)
        # Attach the generative ground truth for the noise studies.
        dataset.user_clusters = user_clusters
        dataset.true_affinity = affinity
        return dataset

    @staticmethod
    def _zipf_weights(n: int, exponent: float, rng) -> np.ndarray:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        rng.shuffle(weights)  # decouple item id from popularity rank
        return weights / weights.sum()

    @staticmethod
    def _affinity_matrix(user_clusters: np.ndarray, cfg: SyntheticConfig,
                         rng) -> np.ndarray:
        n_users, k = len(user_clusters), cfg.num_clusters
        off = (1.0 - cfg.cluster_affinity) / (k - 1)
        affinity = np.full((n_users, k), off)
        affinity[np.arange(n_users), user_clusters] = cfg.cluster_affinity
        # Mild per-user jitter so users inside a cluster are not identical.
        affinity *= rng.uniform(0.8, 1.2, size=affinity.shape)
        affinity /= affinity.sum(axis=1, keepdims=True)
        return affinity

    @staticmethod
    def _degrees(cfg: SyntheticConfig, rng) -> np.ndarray:
        # Lognormal with the requested mean; clip so every user can split
        # off at least one test item.
        sigma = 0.5
        mu = np.log(cfg.mean_interactions) - sigma ** 2 / 2
        draws = rng.lognormal(mu, sigma, size=cfg.num_users)
        return np.clip(draws.round().astype(np.int64), 5, cfg.num_items - 1)


def generate_dataset(config: SyntheticConfig) -> InteractionDataset:
    """Convenience wrapper: ``SyntheticGenerator(config).generate()``."""
    return SyntheticGenerator(config).generate()


# ----------------------------------------------------------------------
# Presets mirroring Table I at reduced scale
# ----------------------------------------------------------------------
DATASET_PRESETS: dict[str, SyntheticConfig] = {
    # Amazon-Book: the sparsest, largest catalogue.
    "amazon-small": SyntheticConfig(
        num_users=500, num_items=900, num_clusters=12, mean_interactions=14.0,
        popularity_exponent=1.05, cluster_affinity=0.7, train_noise=0.2,
        seed=11, name="amazon-small"),
    # Yelp2018: mid density.
    "yelp2018-small": SyntheticConfig(
        num_users=450, num_items=650, num_clusters=10, mean_interactions=24.0,
        popularity_exponent=0.95, cluster_affinity=0.75, train_noise=0.2,
        seed=7, name="yelp2018-small"),
    # Gowalla: slightly sparser than Yelp, noisier positives (the paper
    # suspects more positive noise in Gowalla; higher train_noise).
    "gowalla-small": SyntheticConfig(
        num_users=450, num_items=700, num_clusters=10, mean_interactions=18.0,
        popularity_exponent=1.0, cluster_affinity=0.65, train_noise=0.3,
        seed=13, name="gowalla-small"),
    # MovieLens-1M: small, dense, comparatively clean explicit-rating data.
    "ml1m-small": SyntheticConfig(
        num_users=300, num_items=240, num_clusters=8, mean_interactions=55.0,
        popularity_exponent=0.8, cluster_affinity=0.8, train_noise=0.1,
        seed=5, name="ml1m-small"),
    # A tiny workload for unit/integration tests.
    "tiny": SyntheticConfig(
        num_users=60, num_items=80, num_clusters=4, mean_interactions=12.0,
        popularity_exponent=0.9, cluster_affinity=0.8, train_noise=0.1,
        seed=3, name="tiny"),
}

_CACHE: dict[str, InteractionDataset] = {}


def dataset_names() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(DATASET_PRESETS)


def load_dataset(name: str, use_cache: bool = True) -> InteractionDataset:
    """Instantiate a preset dataset by name (cached: generation is pure)."""
    if name not in DATASET_PRESETS:
        raise KeyError(f"unknown dataset {name!r}; available: {dataset_names()}")
    if use_cache and name in _CACHE:
        return _CACHE[name]
    dataset = generate_dataset(DATASET_PRESETS[name])
    if use_cache:
        _CACHE[name] = dataset
    return dataset
