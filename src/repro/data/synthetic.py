"""Synthetic implicit-feedback generator and dataset presets.

The paper evaluates on Yelp2018, Gowalla, Amazon-Book and MovieLens-1M
(Table I).  Those dumps are unavailable offline, so we generate datasets
from a latent-cluster preference model that preserves the properties the
paper's claims depend on:

* **Collaborative structure** — users and items belong to latent
  clusters; users interact mostly within their cluster, so embeddings
  that recover the clusters rank well (this is what makes Recall/NDCG a
  meaningful signal and what the t-SNE study of Figs. 10-11 visualizes).
* **Long-tail popularity** — item base popularity follows a Zipf law, so
  popularity bias and the fairness analysis (Figs. 4a / 5) apply.
* **Controllable noise** — the generator exposes the true affinity
  matrix, so false positives/negatives can be injected at exact rates
  (RQ2/RQ3) and measured against the ground truth.

Presets mirror Table I's *relative* shape at ~1/50 scale: MovieLens is
dense, Amazon is the sparsest, Yelp/Gowalla sit in between.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import asdict, dataclass

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.source import (DEFAULT_BLOCK_ROWS, InteractionShardWriter,
                               ShardedInteractionSource,
                               is_interaction_shards)
from repro.tensor.random import ensure_rng

__all__ = ["SyntheticConfig", "SyntheticGenerator", "generate_dataset",
           "load_dataset", "DATASET_PRESETS", "dataset_names",
           "ScaleConfig", "SCALE_PRESETS", "scale_preset_names",
           "generate_scale_shards", "load_scale_source", "scale_cache_root"]


@dataclass
class SyntheticConfig:
    """Knobs of the latent-cluster generator."""

    num_users: int = 400
    num_items: int = 500
    num_clusters: int = 10
    mean_interactions: float = 25.0
    #: Zipf exponent of the item base-popularity law; ~0.8-1.1 matches the
    #: long tails of the paper's datasets.
    popularity_exponent: float = 1.0
    #: Probability mass a user puts on their home cluster (rest spread
    #: over the others).  Higher = cleaner collaborative signal.
    cluster_affinity: float = 0.75
    #: Fraction of each user's interactions held out for testing.
    test_fraction: float = 0.2
    #: Fraction of each user's *training* interactions drawn uniformly at
    #: random instead of from their preference distribution.  This is the
    #: intrinsic label noise real implicit feedback carries (clickbait,
    #: mis-clicks, conformity) — the very premise of the paper.  The test
    #: split stays clean so measured metrics reflect true preference.
    train_noise: float = 0.15
    seed: int = 0
    name: str = "synthetic"

    def __post_init__(self):
        if self.num_clusters < 2:
            raise ValueError("need at least 2 clusters for collaborative signal")
        if not 0.0 < self.cluster_affinity <= 1.0:
            raise ValueError("cluster_affinity must lie in (0, 1]")
        if not 0.0 < self.test_fraction < 1.0:
            raise ValueError("test_fraction must lie in (0, 1)")
        if not 0.0 <= self.train_noise < 1.0:
            raise ValueError("train_noise must lie in [0, 1)")


class SyntheticGenerator:
    """Draws an :class:`InteractionDataset` from a latent preference model.

    The generative story: item ``i`` gets a cluster ``c(i)`` and a Zipf
    popularity weight; user ``u`` gets a home cluster and an affinity
    vector over clusters; the probability that ``u`` interacts with ``i``
    is proportional to ``affinity(u, c(i)) * pop(i)``.  Degrees are
    lognormal so some users are heavy (as in the real datasets).
    """

    def __init__(self, config: SyntheticConfig):
        self.config = config

    def generate(self) -> InteractionDataset:
        cfg = self.config
        rng = ensure_rng(cfg.seed)

        item_clusters = rng.integers(0, cfg.num_clusters, size=cfg.num_items)
        user_clusters = rng.integers(0, cfg.num_clusters, size=cfg.num_users)
        popularity = self._zipf_weights(cfg.num_items, cfg.popularity_exponent, rng)

        affinity = self._affinity_matrix(user_clusters, cfg, rng)
        # Per-user item distribution: affinity towards the item's cluster
        # times the item's global popularity.
        item_weight_by_cluster = popularity[None, :] * np.equal.outer(
            np.arange(cfg.num_clusters), item_clusters)

        degrees = self._degrees(cfg, rng)
        train_rows, test_rows = [], []
        for u in range(cfg.num_users):
            probs = affinity[u] @ item_weight_by_cluster
            probs /= probs.sum()
            k = min(degrees[u], cfg.num_items - 1)
            items = rng.choice(cfg.num_items, size=k, replace=False, p=probs)
            rng.shuffle(items)
            # Test items come from the clean preference draw.
            n_test = max(1, int(round(cfg.test_fraction * k)))
            for item in items[:n_test]:
                test_rows.append((u, item))
            # Training items: a train_noise fraction is replaced by
            # uniform random items (intrinsic false positives).
            train_items = items[n_test:]
            n_noise = int(round(cfg.train_noise * len(train_items)))
            if n_noise:
                forbidden = set(items.tolist())
                candidates = np.array(
                    [i for i in range(cfg.num_items) if i not in forbidden])
                if len(candidates) >= n_noise:
                    noise_items = rng.choice(candidates, size=n_noise,
                                             replace=False)
                    train_items = np.concatenate(
                        [train_items[: len(train_items) - n_noise],
                         noise_items])
            for item in train_items:
                train_rows.append((u, item))

        dataset = InteractionDataset(
            cfg.num_users, cfg.num_items,
            np.asarray(train_rows, dtype=np.int64),
            np.asarray(test_rows, dtype=np.int64),
            name=cfg.name, item_clusters=item_clusters)
        # Attach the generative ground truth for the noise studies.
        dataset.user_clusters = user_clusters
        dataset.true_affinity = affinity
        return dataset

    @staticmethod
    def _zipf_weights(n: int, exponent: float, rng) -> np.ndarray:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-exponent)
        rng.shuffle(weights)  # decouple item id from popularity rank
        return weights / weights.sum()

    @staticmethod
    def _affinity_matrix(user_clusters: np.ndarray, cfg: SyntheticConfig,
                         rng) -> np.ndarray:
        n_users, k = len(user_clusters), cfg.num_clusters
        off = (1.0 - cfg.cluster_affinity) / (k - 1)
        affinity = np.full((n_users, k), off)
        affinity[np.arange(n_users), user_clusters] = cfg.cluster_affinity
        # Mild per-user jitter so users inside a cluster are not identical.
        affinity *= rng.uniform(0.8, 1.2, size=affinity.shape)
        affinity /= affinity.sum(axis=1, keepdims=True)
        return affinity

    @staticmethod
    def _degrees(cfg: SyntheticConfig, rng) -> np.ndarray:
        # Lognormal with the requested mean; clip so every user can split
        # off at least one test item.
        sigma = 0.5
        mu = np.log(cfg.mean_interactions) - sigma ** 2 / 2
        draws = rng.lognormal(mu, sigma, size=cfg.num_users)
        return np.clip(draws.round().astype(np.int64), 5, cfg.num_items - 1)


def generate_dataset(config: SyntheticConfig) -> InteractionDataset:
    """Convenience wrapper: ``SyntheticGenerator(config).generate()``."""
    return SyntheticGenerator(config).generate()


# ----------------------------------------------------------------------
# Presets mirroring Table I at reduced scale
# ----------------------------------------------------------------------
DATASET_PRESETS: dict[str, SyntheticConfig] = {
    # Amazon-Book: the sparsest, largest catalogue.
    "amazon-small": SyntheticConfig(
        num_users=500, num_items=900, num_clusters=12, mean_interactions=14.0,
        popularity_exponent=1.05, cluster_affinity=0.7, train_noise=0.2,
        seed=11, name="amazon-small"),
    # Yelp2018: mid density.
    "yelp2018-small": SyntheticConfig(
        num_users=450, num_items=650, num_clusters=10, mean_interactions=24.0,
        popularity_exponent=0.95, cluster_affinity=0.75, train_noise=0.2,
        seed=7, name="yelp2018-small"),
    # Gowalla: slightly sparser than Yelp, noisier positives (the paper
    # suspects more positive noise in Gowalla; higher train_noise).
    "gowalla-small": SyntheticConfig(
        num_users=450, num_items=700, num_clusters=10, mean_interactions=18.0,
        popularity_exponent=1.0, cluster_affinity=0.65, train_noise=0.3,
        seed=13, name="gowalla-small"),
    # MovieLens-1M: small, dense, comparatively clean explicit-rating data.
    "ml1m-small": SyntheticConfig(
        num_users=300, num_items=240, num_clusters=8, mean_interactions=55.0,
        popularity_exponent=0.8, cluster_affinity=0.8, train_noise=0.1,
        seed=5, name="ml1m-small"),
    # A tiny workload for unit/integration tests.
    "tiny": SyntheticConfig(
        num_users=60, num_items=80, num_clusters=4, mean_interactions=12.0,
        popularity_exponent=0.9, cluster_affinity=0.8, train_noise=0.1,
        seed=3, name="tiny"),
}

_CACHE: dict[str, InteractionDataset] = {}


def dataset_names() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(DATASET_PRESETS)


def load_dataset(name: str, use_cache: bool = True) -> InteractionDataset:
    """Instantiate a preset dataset by name (cached: generation is pure)."""
    if name not in DATASET_PRESETS:
        raise KeyError(f"unknown dataset {name!r}; available: {dataset_names()}")
    if use_cache and name in _CACHE:
        return _CACHE[name]
    dataset = generate_dataset(DATASET_PRESETS[name])
    if use_cache:
        _CACHE[name] = dataset
    return dataset


# ----------------------------------------------------------------------
# Million-scale out-of-core generator
# ----------------------------------------------------------------------
@dataclass
class ScaleConfig:
    """Knobs of the out-of-core power-law shard generator.

    Same generative story as :class:`SyntheticConfig` — Zipf item
    popularity, latent clusters, lognormal user degrees — but streamed:
    item clusters are contiguous id blocks, per-user item draws are
    inverse-CDF samples restricted to a cluster's popularity segment,
    and pairs go straight to the on-disk shard layout of
    :mod:`repro.data.source`.  Nothing ever materializes more than a
    few bytes per entity (degrees, popularity CDF, item counts), so
    1M+ x 1M+ catalogues generate in flat memory.  Duplicate
    (user, item) pairs may occur, as in real implicit-feedback logs;
    the CSR/degree accounting counts them exactly like
    :class:`InteractionDataset` does.
    """

    num_users: int = 1_000_000
    num_items: int = 1_000_000
    num_clusters: int = 64
    mean_interactions: float = 8.0
    popularity_exponent: float = 1.0
    cluster_affinity: float = 0.75
    #: Degree clip keeps single users from dominating a shard block.
    max_degree: int = 512
    #: Users drawn per streaming chunk; bounds generator working memory.
    users_per_chunk: int = 65_536
    block_rows: int = DEFAULT_BLOCK_ROWS
    seed: int = 0
    name: str = "scale"

    def __post_init__(self):
        if self.num_clusters < 2:
            raise ValueError("need at least 2 clusters")
        if self.num_items < self.num_clusters:
            raise ValueError("need at least one item per cluster")
        if not 0.0 < self.cluster_affinity <= 1.0:
            raise ValueError("cluster_affinity must lie in (0, 1]")
        if self.mean_interactions <= 0:
            raise ValueError("mean_interactions must be positive")
        if self.users_per_chunk <= 0 or self.max_degree <= 0:
            raise ValueError("users_per_chunk/max_degree must be positive")


def _scale_degrees(cfg: ScaleConfig, rng) -> np.ndarray:
    """Lognormal user degrees, drawn chunk-by-chunk, clipped to [1, max]."""
    sigma = 0.5
    mu = np.log(cfg.mean_interactions) - sigma ** 2 / 2
    out = np.empty(cfg.num_users, dtype=np.int64)
    cap = min(cfg.max_degree, cfg.num_items - 1)
    for lo in range(0, cfg.num_users, cfg.users_per_chunk):
        hi = min(lo + cfg.users_per_chunk, cfg.num_users)
        draws = rng.lognormal(mu, sigma, size=hi - lo)
        out[lo:hi] = np.clip(draws.round().astype(np.int64), 1, cap)
    return out


def generate_scale_shards(config: ScaleConfig,
                          out_dir: str | pathlib.Path
                          ) -> ShardedInteractionSource:
    """Stream a power-law catalogue into an interaction-shard directory.

    Two passes over the user range with one RNG: degrees first (so the
    total pair count is known up front and the ``.npy`` headers can be
    written before the data), then the per-chunk interaction draws.
    Pairs are emitted grouped by ascending user, so the pair blocks
    double as the CSR grouping.
    """
    cfg = config
    rng = ensure_rng(cfg.seed)
    degrees = _scale_degrees(cfg, rng)
    num_train = int(degrees.sum())

    # Popularity CDF over items; cluster c owns the contiguous id block
    # [bounds[c], bounds[c + 1]).
    weights = SyntheticGenerator._zipf_weights(
        cfg.num_items, cfg.popularity_exponent, rng)
    cdf = np.concatenate([np.zeros(1), np.cumsum(weights)])
    bounds = np.linspace(0, cfg.num_items,
                         cfg.num_clusters + 1).astype(np.int64)

    writer = InteractionShardWriter(
        out_dir, name=cfg.name, num_users=cfg.num_users,
        num_items=cfg.num_items, num_train=num_train,
        block_rows=cfg.block_rows, config=asdict(cfg))
    for lo in range(0, cfg.num_users, cfg.users_per_chunk):
        hi = min(lo + cfg.users_per_chunk, cfg.num_users)
        chunk_degrees = degrees[lo:hi]
        homes = rng.integers(0, cfg.num_clusters, size=hi - lo)
        users = np.repeat(np.arange(lo, hi, dtype=np.int64), chunk_degrees)
        home_rep = np.repeat(homes, chunk_degrees)
        n = len(users)
        stay = rng.random(n) < cfg.cluster_affinity
        cluster = np.where(stay, home_rep,
                           rng.integers(0, cfg.num_clusters, size=n))
        seg_lo, seg_hi = bounds[cluster], bounds[cluster + 1]
        # Inverse-CDF draw restricted to the cluster's popularity mass.
        u = cdf[seg_lo] + rng.random(n) * (cdf[seg_hi] - cdf[seg_lo])
        items = np.searchsorted(cdf, u, side="right") - 1
        items = np.clip(items, seg_lo, seg_hi - 1)
        writer.append(users, items)
    return ShardedInteractionSource(writer.close())


SCALE_PRESETS: dict[str, ScaleConfig] = {
    # Reduced-size smoke level; also the nightly-CI out-of-core check.
    "scale-100k": ScaleConfig(
        num_users=100_000, num_items=100_000, num_clusters=32,
        mean_interactions=10.0, seed=17, name="scale-100k"),
    # Intermediate point so the RSS-vs-catalogue curve has a midpoint.
    "scale-300k": ScaleConfig(
        num_users=300_000, num_items=300_000, num_clusters=48,
        mean_interactions=9.0, seed=19, name="scale-300k"),
    # The million-scale proof point (ROADMAP item 1).
    "scale-1m": ScaleConfig(
        num_users=1_000_000, num_items=1_000_000, num_clusters=64,
        mean_interactions=8.0, seed=23, name="scale-1m"),
}


def scale_preset_names() -> list[str]:
    """Names accepted by :func:`load_scale_source`."""
    return sorted(SCALE_PRESETS)


def scale_cache_root() -> pathlib.Path:
    """Where generated scale shards live (override: ``REPRO_SCALE_DIR``)."""
    root = os.environ.get("REPRO_SCALE_DIR")
    if root:
        return pathlib.Path(root)
    return pathlib.Path.home() / ".cache" / "repro-scale"


def load_scale_source(name: str,
                      root: str | pathlib.Path | None = None
                      ) -> ShardedInteractionSource:
    """Open (generating on first use) a scale preset's shard directory.

    Generation is pure in the preset config, so an existing directory is
    reused iff its manifest records the same config; anything else is
    regenerated in place.
    """
    if name not in SCALE_PRESETS:
        raise KeyError(
            f"unknown scale preset {name!r}; available: {scale_preset_names()}")
    cfg = SCALE_PRESETS[name]
    out_dir = pathlib.Path(root) if root is not None else scale_cache_root()
    out_dir = out_dir / name
    if is_interaction_shards(out_dir):
        source = ShardedInteractionSource(out_dir)
        if source.manifest.get("config") == asdict(cfg):
            return source
    return generate_scale_shards(cfg, out_dir)
