"""Noise-injection utilities for the robustness studies.

Two corruption modes from the paper:

* **False positives** (RQ3, Fig. 6, Table IV, Figs. 10-11): a fraction of
  each user's training positives is replaced/augmented with items the
  user never interacted with, keeping the *test* set clean.
* **False negatives** are handled at sampling time by
  :class:`repro.data.sampling.UniformNegativeSampler` via ``rnoise``.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.tensor.random import ensure_rng

__all__ = ["inject_positive_noise", "positive_noise_rate"]


def inject_positive_noise(dataset: InteractionDataset, ratio: float,
                          rng=None) -> InteractionDataset:
    """Add fake positives amounting to ``ratio`` of each user's degree.

    Follows Sec. V-D: "contaminate the positive instances by introducing
    a certain proportion of randomly sampled negative items ... while
    keeping the test set unchanged".  The number of injected items per
    user is proportional to the user's interaction frequency, matching
    Sec. IV-A's protocol.

    Parameters
    ----------
    ratio:
        Noise ratio in [0, 1]; e.g. 0.4 adds 40% extra (fake) positives.
    rng:
        Seed or generator.

    Returns
    -------
    A new :class:`InteractionDataset` sharing the test split.
    """
    if not 0.0 <= ratio <= 1.0:
        raise ValueError(f"noise ratio must lie in [0, 1], got {ratio}")
    if ratio == 0.0:
        return dataset
    rng = ensure_rng(rng)

    new_rows = [dataset.train_pairs]
    all_items = np.arange(dataset.num_items)
    for u in range(dataset.num_users):
        pos = dataset.train_items_by_user[u]
        held = dataset.test_items_by_user[u]
        k = int(round(ratio * len(pos)))
        if k == 0:
            continue
        forbidden = np.union1d(pos, held)
        candidates = np.setdiff1d(all_items, forbidden, assume_unique=False)
        if len(candidates) == 0:
            continue
        k = min(k, len(candidates))
        fake = rng.choice(candidates, size=k, replace=False)
        new_rows.append(np.column_stack([np.full(k, u, dtype=np.int64), fake]))

    noisy_pairs = np.concatenate(new_rows, axis=0)
    noisy = dataset.with_train_pairs(
        noisy_pairs, name=f"{dataset.name}+pnoise{ratio:g}")
    # Carry over the generative ground truth when present so analysis
    # code can still distinguish true from fake positives.
    for attr in ("user_clusters", "true_affinity"):
        if hasattr(dataset, attr):
            setattr(noisy, attr, getattr(dataset, attr))
    return noisy


def positive_noise_rate(clean: InteractionDataset,
                        noisy: InteractionDataset) -> float:
    """Measure the achieved fraction of injected (fake) positives."""
    clean_set = {(int(u), int(i)) for u, i in clean.train_pairs}
    noisy_pairs = [(int(u), int(i)) for u, i in noisy.train_pairs]
    fake = sum(1 for p in noisy_pairs if p not in clean_set)
    return fake / max(1, len(noisy_pairs))
