"""Datasets, synthetic generation, sampling and noise injection."""

from repro.data.dataset import InteractionDataset
from repro.data.source import (InteractionSource, DatasetSource,
                               ShardedInteractionSource,
                               InteractionShardWriter, as_source,
                               batch_contains, write_interaction_shards,
                               is_interaction_shards,
                               INTERACTION_SHARDS_SCHEMA)
from repro.data.synthetic import (SyntheticConfig, SyntheticGenerator,
                                  generate_dataset, load_dataset,
                                  dataset_names, DATASET_PRESETS,
                                  ScaleConfig, SCALE_PRESETS,
                                  scale_preset_names, generate_scale_shards,
                                  load_scale_source, scale_cache_root)
from repro.data.sampling import (TrainingBatch, UniformNegativeSampler,
                                 InBatchSampler, PopularityNegativeSampler)
from repro.data.noise import inject_positive_noise, positive_noise_rate
from repro.data.splits import (ratio_split, leave_one_out_split,
                               validation_split)

__all__ = [
    "InteractionDataset", "InteractionSource", "DatasetSource",
    "ShardedInteractionSource", "InteractionShardWriter", "as_source",
    "batch_contains", "write_interaction_shards", "is_interaction_shards",
    "INTERACTION_SHARDS_SCHEMA", "SyntheticConfig", "SyntheticGenerator",
    "generate_dataset", "load_dataset", "dataset_names", "DATASET_PRESETS",
    "ScaleConfig", "SCALE_PRESETS", "scale_preset_names",
    "generate_scale_shards", "load_scale_source", "scale_cache_root",
    "TrainingBatch", "UniformNegativeSampler", "InBatchSampler",
    "PopularityNegativeSampler", "inject_positive_noise",
    "positive_noise_rate", "ratio_split", "leave_one_out_split",
    "validation_split",
]
