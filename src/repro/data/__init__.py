"""Datasets, synthetic generation, sampling and noise injection."""

from repro.data.dataset import InteractionDataset
from repro.data.synthetic import (SyntheticConfig, SyntheticGenerator,
                                  generate_dataset, load_dataset,
                                  dataset_names, DATASET_PRESETS)
from repro.data.sampling import (TrainingBatch, UniformNegativeSampler,
                                 InBatchSampler, PopularityNegativeSampler)
from repro.data.noise import inject_positive_noise, positive_noise_rate
from repro.data.splits import (ratio_split, leave_one_out_split,
                               validation_split)

__all__ = [
    "InteractionDataset", "SyntheticConfig", "SyntheticGenerator",
    "generate_dataset", "load_dataset", "dataset_names", "DATASET_PRESETS",
    "TrainingBatch", "UniformNegativeSampler", "InBatchSampler",
    "PopularityNegativeSampler", "inject_positive_noise",
    "positive_noise_rate", "ratio_split", "leave_one_out_split",
    "validation_split",
]
