"""Reading and writing interaction files.

Real-world adoption path: load the LightGCN-style ``train.txt`` /
``test.txt`` format (one line per user: ``user item item ...``) or a
plain pair/TSV format, and save datasets back out.  The paper's public
datasets ship in the LightGCN format, so a user with the real dumps can
drop them in and rerun every bench against them.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.data.dataset import InteractionDataset

__all__ = ["read_pairs", "read_adjacency_lists", "load_lightgcn_format",
           "save_lightgcn_format"]


def read_pairs(path, delimiter=None) -> np.ndarray:
    """Read ``user item`` pairs (one per line) into an ``(n, 2)`` array."""
    rows = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            parts = line.split(delimiter)
            if not parts or parts == [""]:
                continue
            if len(parts) < 2:
                raise ValueError(f"{path}:{line_no}: expected 'user item'")
            rows.append((int(parts[0]), int(parts[1])))
    return np.asarray(rows, dtype=np.int64).reshape(-1, 2)


def read_adjacency_lists(path) -> np.ndarray:
    """Read LightGCN-style lines ``user item1 item2 ...`` into pairs."""
    rows = []
    with open(path) as handle:
        for line in handle:
            parts = line.split()
            if not parts:
                continue
            user = int(parts[0])
            rows.extend((user, int(item)) for item in parts[1:])
    if not rows:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(rows, dtype=np.int64)


def load_lightgcn_format(train_path, test_path,
                         name: str = "custom") -> InteractionDataset:
    """Build a dataset from LightGCN-style train/test files.

    Entity counts are inferred as ``max id + 1`` over both files.
    """
    train_pairs = read_adjacency_lists(train_path)
    test_pairs = read_adjacency_lists(test_path)
    if len(train_pairs) == 0:
        raise ValueError(f"no interactions found in {train_path}")
    all_pairs = np.concatenate([train_pairs, test_pairs]) \
        if len(test_pairs) else train_pairs
    num_users = int(all_pairs[:, 0].max()) + 1
    num_items = int(all_pairs[:, 1].max()) + 1
    return InteractionDataset(num_users, num_items, train_pairs,
                              test_pairs, name=name)


def save_lightgcn_format(dataset: InteractionDataset, train_path,
                         test_path) -> None:
    """Write a dataset back out in the LightGCN adjacency-list format."""
    for path, items_by_user in ((train_path, dataset.train_items_by_user),
                                (test_path, dataset.test_items_by_user)):
        path = pathlib.Path(path)
        with open(path, "w") as handle:
            for user, items in enumerate(items_by_user):
                if len(items) == 0:
                    continue
                joined = " ".join(str(int(i)) for i in items)
                handle.write(f"{user} {joined}\n")
