"""Train/test splitting utilities.

The synthetic generator splits internally, but users bringing their own
interaction logs need the standard protocols: per-user ratio holdout
(the LightGCN/paper convention) and leave-one-out.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.tensor.random import ensure_rng

__all__ = ["ratio_split", "leave_one_out_split", "validation_split"]


def _group_by_user(pairs: np.ndarray) -> dict[int, np.ndarray]:
    order = np.argsort(pairs[:, 0], kind="stable")
    pairs = pairs[order]
    users, starts = np.unique(pairs[:, 0], return_index=True)
    bounds = np.append(starts, len(pairs))
    return {int(u): pairs[lo:hi, 1]
            for u, lo, hi in zip(users, bounds[:-1], bounds[1:])}


def ratio_split(pairs, num_users: int, num_items: int,
                test_fraction: float = 0.2, rng=None,
                name: str = "custom") -> InteractionDataset:
    """Per-user random holdout of ``test_fraction`` of interactions.

    Users with a single interaction keep it in training (they cannot be
    evaluated anyway).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must lie in (0, 1)")
    pairs = np.asarray(pairs, dtype=np.int64)
    rng = ensure_rng(rng)
    train_rows, test_rows = [], []
    for user, items in _group_by_user(pairs).items():
        items = items.copy()
        rng.shuffle(items)
        if len(items) < 2:
            train_rows.extend((user, i) for i in items)
            continue
        n_test = max(1, int(round(test_fraction * len(items))))
        n_test = min(n_test, len(items) - 1)  # keep >=1 training item
        test_rows.extend((user, i) for i in items[:n_test])
        train_rows.extend((user, i) for i in items[n_test:])
    return InteractionDataset(
        num_users, num_items,
        np.asarray(train_rows, dtype=np.int64),
        np.asarray(test_rows, dtype=np.int64), name=name)


def leave_one_out_split(pairs, num_users: int, num_items: int, rng=None,
                        name: str = "custom-loo") -> InteractionDataset:
    """Hold out exactly one random interaction per user (>= 2 needed)."""
    pairs = np.asarray(pairs, dtype=np.int64)
    rng = ensure_rng(rng)
    train_rows, test_rows = [], []
    for user, items in _group_by_user(pairs).items():
        items = items.copy()
        rng.shuffle(items)
        if len(items) < 2:
            train_rows.extend((user, i) for i in items)
            continue
        test_rows.append((user, items[0]))
        train_rows.extend((user, i) for i in items[1:])
    return InteractionDataset(
        num_users, num_items,
        np.asarray(train_rows, dtype=np.int64),
        np.asarray(test_rows, dtype=np.int64), name=name)


def validation_split(dataset: InteractionDataset,
                     fraction: float = 0.1, rng=None
                     ) -> tuple[InteractionDataset, InteractionDataset]:
    """Carve a validation set out of a dataset's *training* interactions.

    Returns ``(fit_dataset, val_dataset)``:

    * ``fit_dataset`` — same test split, training interactions minus the
      held-out validation positives (what the model trains on);
    * ``val_dataset`` — same reduced training set, with the held-out
      positives as its test split (what early stopping watches).

    This mirrors the standard protocol: tune/early-stop on validation,
    report on the untouched test split.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must lie in (0, 1)")
    rng = ensure_rng(rng)
    fit_rows, val_rows = [], []
    for user in range(dataset.num_users):
        items = dataset.train_items_by_user[user].copy()
        if len(items) < 2:
            fit_rows.extend((user, i) for i in items)
            continue
        rng.shuffle(items)
        n_val = max(1, int(round(fraction * len(items))))
        n_val = min(n_val, len(items) - 1)
        val_rows.extend((user, i) for i in items[:n_val])
        fit_rows.extend((user, i) for i in items[n_val:])
    fit_pairs = np.asarray(fit_rows, dtype=np.int64)
    val_pairs = np.asarray(val_rows, dtype=np.int64)
    fit_dataset = InteractionDataset(
        dataset.num_users, dataset.num_items, fit_pairs,
        dataset.test_pairs, name=f"{dataset.name}-fit",
        item_clusters=dataset.item_clusters)
    val_dataset = InteractionDataset(
        dataset.num_users, dataset.num_items, fit_pairs, val_pairs,
        name=f"{dataset.name}-val", item_clusters=dataset.item_clusters)
    return fit_dataset, val_dataset
