"""Negative sampling strategies.

The paper trains with either *uniform negative sampling* (MF) or
*in-batch negatives* (GCN backbones, Appendix Table V), and probes
robustness by letting the sampler draw false negatives at a controlled
rate ``rnoise`` (Sec. III-B, Figs. 3/8): ``rnoise`` is the ratio of the
sampling probability of a positive item to that of a negative item.

Samplers read training data through the
:class:`~repro.data.source.InteractionSource` protocol, so the same code
drives an in-memory :class:`~repro.data.dataset.InteractionDataset` and
an out-of-core :class:`~repro.data.source.ShardedInteractionSource`.
Every per-batch operation touches only the batch's users — collision
detection runs against batch-gathered sorted positives
(:func:`~repro.data.source.batch_contains`) instead of a dense
``num_users × num_items`` mask — and the RNG call sequence is identical
to the historical dataset-backed implementation, so draws are
bit-reproducible across both backends (``tests/test_data_source.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.source import as_source, batch_contains
from repro.obs.metrics import get_registry
from repro.tensor.random import ensure_rng

__all__ = ["TrainingBatch", "UniformNegativeSampler", "InBatchSampler",
           "PopularityNegativeSampler"]


@dataclass
class TrainingBatch:
    """One mini-batch of (user, positive, negatives) triples.

    ``negatives`` has shape ``(batch, n_negatives)``; for in-batch
    sampling each row simply reuses the other positives of the batch.
    """

    users: np.ndarray
    positives: np.ndarray
    negatives: np.ndarray

    def __len__(self) -> int:
        return len(self.users)


class _PairShuffler:
    """Shared epoch logic: shuffle training pairs and cut mini-batches."""

    def __init__(self, dataset, batch_size: int, rng=None):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.source = as_source(dataset)
        self.batch_size = batch_size
        self._rng = ensure_rng(rng)

    def _epoch_order(self) -> np.ndarray:
        return self._rng.permutation(self.source.num_train)


class UniformNegativeSampler(_PairShuffler):
    """Uniform sampling of ``n_negatives`` items per positive pair.

    Parameters
    ----------
    n_negatives:
        Number of negatives per (user, positive) pair; the paper sweeps
        {32 ... 2048} in Fig. 9.
    rnoise:
        False-negative intensity (Fig. 3/8).  A sampled negative slot is
        drawn from the user's *positive* set with probability
        ``rnoise * |S+| / (rnoise * |S+| + |S-|)`` — i.e. each positive
        item is ``rnoise`` times as likely to be drawn as each true
        negative item, exactly the paper's definition.
    exclude_positives:
        If True (and ``rnoise == 0``) resample collisions with the
        user's training positives, giving clean negatives.
    """

    def __init__(self, dataset, n_negatives: int = 64,
                 batch_size: int = 1024, rnoise: float = 0.0,
                 exclude_positives: bool = True, rng=None):
        super().__init__(dataset, batch_size, rng)
        if n_negatives <= 0:
            raise ValueError(f"n_negatives must be positive, got {n_negatives}")
        if rnoise < 0:
            raise ValueError(f"rnoise must be non-negative, got {rnoise}")
        self.n_negatives = n_negatives
        self.rnoise = rnoise
        self.exclude_positives = exclude_positives
        # Redraw telemetry: instruments are fetched once at construction
        # (a disabled registry hands back shared no-op singletons) and
        # bumped once per batch, so the draw loop itself stays clean.
        registry = get_registry()
        self._ctr_draws = registry.counter(
            "train.sampler.draws", "negative slots drawn")
        self._ctr_collisions = registry.counter(
            "train.sampler.collisions",
            "drawn negatives that collided with a positive")
        self._ctr_redraws = registry.counter(
            "train.sampler.redraws",
            "colliding slots replaced via the masked redraw")

    def epoch(self):
        """Yield :class:`TrainingBatch` objects covering one epoch."""
        order = self._epoch_order()
        for lo in range(0, len(order), self.batch_size):
            chunk = self.source.pairs(order[lo:lo + self.batch_size])
            users, positives = chunk[:, 0], chunk[:, 1]
            negatives = self._draw_negatives(users)
            yield TrainingBatch(users, positives, negatives)

    def _draw_negatives(self, users: np.ndarray) -> np.ndarray:
        n_items = self.source.num_items
        negatives = self._rng.integers(
            0, n_items, size=(len(users), self.n_negatives))
        self._ctr_draws.inc(negatives.size)
        if self.rnoise > 0:
            # Exact rnoise semantics: every slot is a true negative unless
            # explicitly corrupted, so the positive/negative sampling-
            # probability ratio is exactly rnoise.
            self._resample_collisions(users, negatives)
            self._mix_in_false_negatives(users, negatives)
        elif self.exclude_positives:
            self._resample_collisions(users, negatives)
        return negatives

    def _mix_in_false_negatives(self, users: np.ndarray,
                                negatives: np.ndarray) -> None:
        """Overwrite slots with positives at the rnoise-implied rate.

        Vectorized: per-row slot-corruption probabilities follow the
        paper's definition, and the replacement items are drawn from the
        batch's padded positive rows in one gather.
        """
        padded, degrees = self.source.batch_padded_positives(users)
        deg = degrees.astype(np.float64)                            # (B,)
        n_neg = self.source.num_items - deg
        with np.errstate(divide="ignore", invalid="ignore"):
            p_pos = np.where(deg > 0,
                             self.rnoise * deg / (self.rnoise * deg + n_neg),
                             0.0)
        corrupt = self._rng.random(negatives.shape) < p_pos[:, None]
        if not corrupt.any():
            return
        slot = (self._rng.random(negatives.shape)
                * np.maximum(deg, 1.0)[:, None]).astype(np.int64)
        batch_rows = np.arange(len(users), dtype=np.int64)
        replacements = padded[batch_rows[:, None], slot]
        negatives[corrupt] = replacements[corrupt]

    def _resample_collisions(self, users: np.ndarray,
                             negatives: np.ndarray) -> None:
        """Replace colliding negatives with one exact masked redraw.

        Colliding slots are redrawn **once**, uniformly over the user's
        non-positive items, via the rank mapping: draw
        ``r ~ U[0, num_items - deg_u)`` and return the ``r``-th
        non-positive item.  With ascending positives ``p_0 < p_1 < ...``
        the ``j``-th positive occupies complement-shifted value
        ``p_j - j``, so the answer is ``r + |{j : p_j - j <= r}|`` —
        fully vectorized, no rejection rounds, and the output is
        *exactly* uniform over the complement.  Collision detection and
        the rank mapping both run on batch-gathered sorted positives, so
        memory follows the batch, not the catalogue; pad sentinels
        exceed ``num_items + width`` and therefore never count.

        Users whose positives cover the whole catalogue have an empty
        complement; their slots are left untouched (a collision is
        unavoidable).
        """
        padded, degrees = self.source.batch_sorted_positives(users)
        collisions = batch_contains(padded, negatives)
        if not collisions.any():
            return
        rows, cols = np.nonzero(collisions)
        self._ctr_collisions.inc(len(rows))
        deg = degrees[rows]
        n_free = self.source.num_items - deg
        ok = n_free > 0
        self._ctr_redraws.inc(int(ok.sum()))
        r = self._rng.integers(0, np.maximum(n_free, 1))
        # rank -> item id: count positives at or below the landing spot
        shifted = padded[rows] - np.arange(padded.shape[1])[None, :]
        redrawn = r + (shifted <= r[:, None]).sum(axis=1)
        negatives[rows[ok], cols[ok]] = redrawn[ok]


class PopularityNegativeSampler(UniformNegativeSampler):
    """Popularity-weighted negatives, ``P(j) ∝ pop(j)^beta``.

    Kept as an ablation: prior work attributed SL's fairness to
    popularity-based sampling; the paper shows uniform sampling already
    yields it, so benches compare the two.
    """

    def __init__(self, dataset, n_negatives: int = 64,
                 batch_size: int = 1024, beta: float = 0.75, rng=None):
        super().__init__(dataset, n_negatives=n_negatives,
                         batch_size=batch_size, rnoise=0.0,
                         exclude_positives=False, rng=rng)
        weights = np.maximum(self.source.item_popularity, 1) ** beta
        self._probs = weights / weights.sum()
        self.beta = beta

    def _draw_negatives(self, users: np.ndarray) -> np.ndarray:
        return self._rng.choice(
            self.source.num_items, size=(len(users), self.n_negatives),
            p=self._probs)


class InBatchSampler(_PairShuffler):
    """In-batch negatives: other positives in the batch serve as negatives.

    Mirrors the paper's Algorithm 2 (used for NGCF/LightGCN).  Each batch
    row ``b`` uses the other ``B - 1`` positive items as its negative set.
    """

    def epoch(self):
        order = self._epoch_order()
        for lo in range(0, len(order), self.batch_size):
            chunk = self.source.pairs(order[lo:lo + self.batch_size])
            if len(chunk) < 2:
                continue  # a single pair has no in-batch negatives
            users, positives = chunk[:, 0], chunk[:, 1]
            negatives = self._in_batch_negatives(positives)
            yield TrainingBatch(users, positives, negatives)

    @staticmethod
    def _in_batch_negatives(positives: np.ndarray) -> np.ndarray:
        batch = len(positives)
        tiled = np.broadcast_to(positives, (batch, batch))
        mask = ~np.eye(batch, dtype=bool)
        return tiled[mask].reshape(batch, batch - 1)
