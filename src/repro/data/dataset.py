"""Implicit-feedback interaction dataset.

Wraps the user-item interaction matrix ``R`` of the paper (Sec. II-A):
train/test positive sets per user, popularity statistics, and sparse
views used by the GCN backbones.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["InteractionDataset"]


class InteractionDataset:
    """Container for one train/test split of implicit feedback.

    Parameters
    ----------
    num_users, num_items:
        Sizes of the user set ``U`` and item set ``I``.
    train_pairs:
        Integer array of shape ``(n_train, 2)`` with (user, item) rows.
    test_pairs:
        Integer array of shape ``(n_test, 2)``; test items are the
        held-out positives used for Recall@K / NDCG@K.
    name:
        Human-readable dataset name (e.g. ``"yelp2018-small"``).
    item_clusters:
        Optional ground-truth cluster id per item (synthetic datasets
        expose this so the t-SNE separation study of Figs. 10-11 can be
        scored without eyeballing plots).
    """

    def __init__(self, num_users: int, num_items: int, train_pairs, test_pairs,
                 name: str = "dataset", item_clusters=None):
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self.train_pairs = self._validate_pairs(train_pairs, "train")
        self.test_pairs = self._validate_pairs(test_pairs, "test")
        self.name = name
        self.item_clusters = (None if item_clusters is None
                              else np.asarray(item_clusters, dtype=np.int64))
        self._build_indexes()

    def _validate_pairs(self, pairs, label: str) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.size == 0:
            return pairs.reshape(0, 2)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"{label}_pairs must be (n, 2), got {pairs.shape}")
        if pairs[:, 0].min() < 0 or pairs[:, 0].max() >= self.num_users:
            raise ValueError(f"{label}_pairs contains out-of-range user ids")
        if pairs[:, 1].min() < 0 or pairs[:, 1].max() >= self.num_items:
            raise ValueError(f"{label}_pairs contains out-of-range item ids")
        return pairs

    def _build_indexes(self) -> None:
        self.train_items_by_user = self._group(self.train_pairs)
        self.test_items_by_user = self._group(self.test_pairs)
        counts = np.zeros(self.num_items, dtype=np.int64)
        np.add.at(counts, self.train_pairs[:, 1], 1)
        self.item_popularity = counts
        self._train_sets = [set(items.tolist()) for items in self.train_items_by_user]
        self._positive_mask: np.ndarray | None = None
        self._padded_positives: tuple[np.ndarray, np.ndarray] | None = None
        self._sorted_padded: tuple[np.ndarray, np.ndarray] | None = None

    def _group(self, pairs: np.ndarray) -> list[np.ndarray]:
        grouped: list[np.ndarray] = [np.empty(0, dtype=np.int64)
                                     for _ in range(self.num_users)]
        if pairs.size == 0:
            return grouped
        order = np.argsort(pairs[:, 0], kind="stable")
        sorted_pairs = pairs[order]
        users, starts = np.unique(sorted_pairs[:, 0], return_index=True)
        bounds = np.append(starts, len(sorted_pairs))
        for u, lo, hi in zip(users, bounds[:-1], bounds[1:]):
            grouped[u] = sorted_pairs[lo:hi, 1].copy()
        return grouped

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def num_train(self) -> int:
        return len(self.train_pairs)

    @property
    def num_test(self) -> int:
        return len(self.test_pairs)

    @property
    def density(self) -> float:
        """Fraction of the interaction matrix that is observed (Table I)."""
        return self.num_train / float(self.num_users * self.num_items)

    def user_degree(self) -> np.ndarray:
        deg = np.zeros(self.num_users, dtype=np.int64)
        np.add.at(deg, self.train_pairs[:, 0], 1)
        return deg

    def is_train_positive(self, user: int, item: int) -> bool:
        return item in self._train_sets[user]

    def popularity_groups(self, n_groups: int = 10) -> np.ndarray:
        """Assign each item to a popularity decile (Figs. 4a / 5).

        Group ids run from 0 (least popular) to ``n_groups - 1`` (most
        popular); groups are equal-count by popularity rank, matching the
        paper's ten interaction-frequency groups.
        """
        order = np.argsort(self.item_popularity, kind="stable")
        groups = np.empty(self.num_items, dtype=np.int64)
        splits = np.array_split(order, n_groups)
        for gid, idx in enumerate(splits):
            groups[idx] = gid
        return groups

    def positive_mask(self) -> np.ndarray:
        """Dense boolean (num_users, num_items) training-positive mask.

        Cached; used by vectorized samplers to reject collisions in bulk.
        Fine at the scaled-down catalogue sizes this library targets.
        """
        if self._positive_mask is None:
            mask = np.zeros((self.num_users, self.num_items), dtype=bool)
            mask[self.train_pairs[:, 0], self.train_pairs[:, 1]] = True
            self._positive_mask = mask
        return self._positive_mask

    def padded_positives(self) -> tuple[np.ndarray, np.ndarray]:
        """(padded_items, degrees): ragged positives as a dense matrix.

        ``padded_items[u, :degrees[u]]`` are user ``u``'s training items;
        the tail is filled with 0 (callers must mask by degree).  Cached;
        enables vectorized per-row positive draws in the noisy sampler.
        """
        if self._padded_positives is None:
            degrees = np.array([len(v) for v in self.train_items_by_user],
                               dtype=np.int64)
            padded = np.zeros((self.num_users, max(1, degrees.max())),
                              dtype=np.int64)
            for u, items in enumerate(self.train_items_by_user):
                padded[u, :len(items)] = items
            self._padded_positives = (padded, degrees)
        return self._padded_positives

    def sorted_padded_positives(self) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`padded_positives` but rows ascending, big sentinel.

        ``sorted_padded[u, :degrees[u]]`` are user ``u``'s **distinct**
        training items in ascending order (degrees here count distinct
        items, unlike :meth:`padded_positives`); the tail is filled
        with a sentinel strictly greater than ``num_items + width`` so
        shifted values (``item - column``) of pad cells can never
        collide with a real rank.  Cached; enables the sampler's exact
        one-shot uniform-over-complement redraw.
        """
        if self._sorted_padded is None:
            uniques = [np.unique(items) for items in self.train_items_by_user]
            degrees = np.array([len(v) for v in uniques], dtype=np.int64)
            width = max(1, int(degrees.max()) if len(degrees) else 1)
            sentinel = self.num_items + width + 1
            out = np.full((self.num_users, width), sentinel, dtype=np.int64)
            for u, items in enumerate(uniques):
                out[u, :len(items)] = items
            self._sorted_padded = (out, degrees)
        return self._sorted_padded

    # ------------------------------------------------------------------
    # Sparse views
    # ------------------------------------------------------------------
    def train_matrix(self) -> sp.csr_matrix:
        """Binary user-item CSR matrix of the training interactions."""
        data = np.ones(len(self.train_pairs), dtype=np.float64)
        mat = sp.csr_matrix(
            (data, (self.train_pairs[:, 0], self.train_pairs[:, 1])),
            shape=(self.num_users, self.num_items))
        mat.data[:] = 1.0  # collapse accidental duplicates
        return mat

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_train_pairs(self, train_pairs, name: str | None = None
                         ) -> "InteractionDataset":
        """Clone with a different training set (noise-injection studies)."""
        return InteractionDataset(
            self.num_users, self.num_items, train_pairs, self.test_pairs,
            name=name or self.name, item_clusters=self.item_clusters)

    def __repr__(self) -> str:
        return (f"InteractionDataset(name={self.name!r}, users={self.num_users}, "
                f"items={self.num_items}, train={self.num_train}, "
                f"test={self.num_test}, density={self.density:.4%})")
