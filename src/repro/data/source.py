"""Interaction sources: one access protocol for in-memory and on-disk data.

The training and export stacks historically assumed a dense, fully
materialized :class:`~repro.data.dataset.InteractionDataset`.  That is
fine at Table-I scale (hundreds of users) but rules out million-scale
catalogues, where even the boolean ``positive_mask`` would need
terabytes.  This module extracts the *access protocol* those stacks
actually need — :class:`InteractionSource` — and provides two
implementations:

* :class:`DatasetSource` adapts an ``InteractionDataset`` (gathering
  batch views of its cached global matrices), and
* :class:`ShardedInteractionSource` memory-maps the on-disk shard layout
  written by :func:`write_interaction_shards` or the scale generator in
  :mod:`repro.data.synthetic`, never materializing dense state.

The contract that makes the refactor safe is *bit-parity*: a sampler or
exporter driven by a ``DatasetSource`` must consume the same RNG stream
and produce the same values as the historical dataset-backed code, and a
``ShardedInteractionSource`` over the same pairs must agree with it
exactly (see ``tests/test_data_source.py``).

On-disk layout (``bsl-interaction-shards/v1``), all arrays ``int64``::

    <dir>/interactions.json   manifest: schema, name, counts, pair blocks
    <dir>/pairs-XXX.npy       (rows, 2) train pairs, original order,
                              split into fixed-size row blocks
    <dir>/indptr.npy          (num_users + 1,) CSR row pointers
    <dir>/csr_items.npy       (num_train,) items grouped by user, within
                              a user in original pair order
    <dir>/item_degrees.npy    (num_items,) interaction count per item
    <dir>/test_pairs.npy      (num_test, 2) held-out pairs (may be empty)
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Iterator

import numpy as np

from repro.data.dataset import InteractionDataset

INTERACTION_SHARDS_SCHEMA = "bsl-interaction-shards/v1"
_MANIFEST_NAME = "interactions.json"
DEFAULT_BLOCK_ROWS = 1 << 21


def batch_contains(sorted_padded: np.ndarray,
                   queries: np.ndarray) -> np.ndarray:
    """Row-wise membership test against sorted padded positive lists.

    ``out[b, j]`` is True iff ``queries[b, j]`` appears in row ``b`` of
    ``sorted_padded`` (ascending item ids padded with a sentinel larger
    than any item id).  Equivalent to gathering a dense
    ``positive_mask`` at ``[users[:, None], queries]`` but needs only
    the batch rows, via one searchsorted over row-offset keys.
    """
    n_rows, width = sorted_padded.shape
    if width == 0 or queries.size == 0:
        return np.zeros(queries.shape, dtype=bool)
    # Rows are ascending, so the last column holds each row's maximum.
    base = int(max(sorted_padded[:, -1].max(), queries.max())) + 1
    offsets = np.arange(n_rows, dtype=np.int64) * base
    keys = (sorted_padded.astype(np.int64) + offsets[:, None]).ravel()
    probes = (queries.astype(np.int64) + offsets[:, None]).ravel()
    pos = np.searchsorted(keys, probes)
    pos = np.minimum(pos, keys.size - 1)
    return (keys[pos] == probes).reshape(queries.shape)


class InteractionSource:
    """Access protocol shared by in-memory and out-of-core train data.

    Implementations expose the identity fields ``name`` /
    ``num_users`` / ``num_items`` / ``num_train`` and the five access
    methods below.  Everything the samplers, the sparse-grad trainer,
    and the sharded exporter need is expressible through this interface;
    nothing in it requires ``O(num_users * num_items)`` memory.
    """

    name: str
    num_users: int
    num_items: int
    num_train: int

    def pairs(self, indices: np.ndarray) -> np.ndarray:
        """Gather ``(len(indices), 2)`` train pairs by row index."""
        raise NotImplementedError

    def user_degrees(self) -> np.ndarray:
        """Raw interaction count per user (duplicates included)."""
        raise NotImplementedError

    def train_csr(self, lo: int = 0,
                  hi: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Train items grouped by user for the user row-range [lo, hi).

        Returns ``(indptr, items)`` with ``indptr`` rebased so that
        ``indptr[0] == 0``; within a user, items keep original pair
        order (the stable-argsort convention of ``InteractionDataset``).
        """
        raise NotImplementedError

    def batch_sorted_positives(
            self, users: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Distinct ascending positives per batch row, sentinel-padded.

        Returns ``(padded, degrees)`` shaped ``(len(users), width)`` and
        ``(len(users),)``: row ``b`` holds the distinct positive items
        of ``users[b]`` ascending, padded with ascending sentinels
        ``> num_items`` exactly as
        ``InteractionDataset.sorted_padded_positives`` pads its rows;
        ``degrees[b]`` counts distinct positives.
        """
        raise NotImplementedError

    def batch_padded_positives(
            self, users: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Insertion-order positives per batch row, zero-padded.

        Returns ``(padded, degrees)`` matching rows of
        ``InteractionDataset.padded_positives``: duplicates kept,
        original order, padded with ``0``; ``degrees[b]`` is the raw
        interaction count of ``users[b]``.
        """
        raise NotImplementedError

    @property
    def item_popularity(self) -> np.ndarray:
        """Interaction count per item over the train split."""
        raise NotImplementedError

    def iter_pair_indices(self, block_rows: int) -> Iterator[np.ndarray]:
        """Sequential row-index blocks covering all train pairs."""
        for lo in range(0, self.num_train, block_rows):
            yield np.arange(lo, min(lo + block_rows, self.num_train),
                            dtype=np.int64)


class DatasetSource(InteractionSource):
    """Adapter presenting an ``InteractionDataset`` as a source.

    Batch views gather rows of the dataset's cached global matrices, so
    a sampler reading through this adapter sees byte-identical values to
    one reading the dataset directly.
    """

    def __init__(self, dataset: InteractionDataset):
        self.dataset = dataset
        self.name = dataset.name
        self.num_users = dataset.num_users
        self.num_items = dataset.num_items
        self.num_train = len(dataset.train_pairs)
        self._csr: tuple[np.ndarray, np.ndarray] | None = None

    def pairs(self, indices: np.ndarray) -> np.ndarray:
        return self.dataset.train_pairs[indices]

    def user_degrees(self) -> np.ndarray:
        return self.dataset.user_degree()

    def _full_csr(self) -> tuple[np.ndarray, np.ndarray]:
        if self._csr is None:
            self._csr = dataset_train_csr(self.dataset)
        return self._csr

    def train_csr(self, lo: int = 0,
                  hi: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        indptr, items = self._full_csr()
        hi = self.num_users if hi is None else hi
        window = indptr[lo:hi + 1]
        return window - window[0], items[window[0]:window[-1]]

    def batch_sorted_positives(
            self, users: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        padded, degrees = self.dataset.sorted_padded_positives()
        return padded[users], degrees[users]

    def batch_padded_positives(
            self, users: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        padded, degrees = self.dataset.padded_positives()
        return padded[users], degrees[users]

    @property
    def item_popularity(self) -> np.ndarray:
        return self.dataset.item_popularity


def dataset_train_csr(
        dataset: InteractionDataset) -> tuple[np.ndarray, np.ndarray]:
    """Global ``(indptr, items)`` CSR of an in-memory dataset.

    Stable sort by user, so within a user items keep original pair
    order — the same convention as ``dataset.train_items_by_user``.
    """
    pairs = dataset.train_pairs
    order = np.argsort(pairs[:, 0], kind="stable")
    items = np.ascontiguousarray(pairs[order, 1]).astype(np.int64)
    counts = np.bincount(pairs[:, 0], minlength=dataset.num_users)
    indptr = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)])
    return indptr, items


def _sorted_padded_from_lists(rows: np.ndarray, valid: np.ndarray,
                              num_items: int) -> tuple[np.ndarray, np.ndarray]:
    """Dedupe + sentinel-pad per-row item lists, matching the dataset.

    ``rows`` is ``(B, W)`` with garbage beyond ``valid``; output width is
    ``max(1, distinct_degrees.max())`` with ascending sentinels starting
    at ``num_items + width + 1``, exactly as
    ``InteractionDataset.sorted_padded_positives`` lays rows out.
    """
    n_rows, width = rows.shape
    if width == 0:
        rows = np.zeros((n_rows, 1), dtype=np.int64)
        valid = np.zeros((n_rows, 1), dtype=bool)
        width = 1
    big = np.int64(num_items) + width + 1
    work = np.where(valid, rows, big)
    work.sort(axis=1)
    # Mark duplicates (equal to their left neighbour) invalid as well.
    dup = np.zeros_like(valid)
    dup[:, 1:] = work[:, 1:] == work[:, :-1]
    distinct = np.where(dup | (work >= big), big, work)
    distinct.sort(axis=1)
    degrees_distinct = (distinct < big).sum(axis=1).astype(np.int64)
    out_width = max(1, int(degrees_distinct.max(initial=0)))
    out = distinct[:, :out_width]
    sentinel = np.int64(num_items) + out_width + 1
    return np.where(out >= big, sentinel, out), degrees_distinct


class ShardedInteractionSource(InteractionSource):
    """Memory-mapped implementation over the on-disk shard layout.

    Pair blocks and the grouped item column stay on disk; only the
    ``(num_users + 1,)`` row pointers and the ``(num_items,)`` item
    degrees are resident — a few bytes per entity.  Batch views are
    built per request from the CSR slice of the touched users.
    """

    def __init__(self, path: str | pathlib.Path):
        self.path = pathlib.Path(path)
        manifest = json.loads((self.path / _MANIFEST_NAME).read_text())
        if manifest.get("schema") != INTERACTION_SHARDS_SCHEMA:
            raise ValueError(
                f"{self.path}: expected schema {INTERACTION_SHARDS_SCHEMA!r},"
                f" found {manifest.get('schema')!r}")
        self.manifest = manifest
        self.name = manifest["name"]
        self.num_users = int(manifest["num_users"])
        self.num_items = int(manifest["num_items"])
        self.num_train = int(manifest["num_train"])
        self._blocks = [
            np.load(self.path / block["path"], mmap_mode="r")
            for block in manifest["pair_blocks"]
        ]
        rows = np.array([block["rows"] for block in manifest["pair_blocks"]],
                        dtype=np.int64)
        self._block_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(rows)])
        if int(self._block_offsets[-1]) != self.num_train:
            raise ValueError(f"{self.path}: pair blocks cover "
                             f"{int(self._block_offsets[-1])} rows, manifest "
                             f"says {self.num_train}")
        self._indptr = np.load(self.path / "indptr.npy")
        self._csr_items = np.load(self.path / "csr_items.npy", mmap_mode="r")
        self._item_degrees = np.load(self.path / "item_degrees.npy")
        self.test_pairs = np.load(self.path / "test_pairs.npy")

    def pairs(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        out = np.empty((len(indices), 2), dtype=np.int64)
        block_of = np.searchsorted(self._block_offsets, indices,
                                   side="right") - 1
        for b in np.unique(block_of):
            mask = block_of == b
            out[mask] = self._blocks[b][indices[mask]
                                        - self._block_offsets[b]]
        return out

    def user_degrees(self) -> np.ndarray:
        return np.diff(self._indptr)

    def train_csr(self, lo: int = 0,
                  hi: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        hi = self.num_users if hi is None else hi
        window = self._indptr[lo:hi + 1]
        items = np.asarray(self._csr_items[window[0]:window[-1]],
                           dtype=np.int64)
        return window - window[0], items

    def _batch_lists(self,
                     users: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                                 np.ndarray]:
        """(rows, valid, degrees) of the users' CSR segments, 0-padded."""
        users = np.asarray(users, dtype=np.int64)
        starts = self._indptr[users]
        degrees = self._indptr[users + 1] - starts
        width = int(degrees.max(initial=0))
        if width == 0:
            return (np.zeros((len(users), 0), dtype=np.int64),
                    np.zeros((len(users), 0), dtype=bool), degrees)
        offsets = np.arange(width, dtype=np.int64)[None, :]
        valid = offsets < degrees[:, None]
        flat = np.where(valid, starts[:, None] + offsets, 0).ravel()
        rows = np.asarray(self._csr_items[flat],
                          dtype=np.int64).reshape(len(users), width)
        return np.where(valid, rows, 0), valid, degrees

    def batch_sorted_positives(
            self, users: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        rows, valid, _ = self._batch_lists(users)
        return _sorted_padded_from_lists(rows, valid, self.num_items)

    def batch_padded_positives(
            self, users: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        rows, valid, degrees = self._batch_lists(users)
        if rows.shape[1] == 0:
            rows = np.zeros((len(users), 1), dtype=np.int64)
        return rows, degrees

    @property
    def item_popularity(self) -> np.ndarray:
        return self._item_degrees


def as_source(data) -> InteractionSource:
    """Coerce a dataset / source / shard directory into a source."""
    if isinstance(data, InteractionSource):
        return data
    if isinstance(data, InteractionDataset):
        source = getattr(data, "_source_adapter", None)
        if source is None:
            source = DatasetSource(data)
            data._source_adapter = source
        return source
    if isinstance(data, (str, pathlib.Path)):
        return ShardedInteractionSource(data)
    raise TypeError(f"cannot build an InteractionSource from {type(data)!r}")


class _NpyStream:
    """Append raw rows to a ``.npy`` file of known final shape.

    Writes the array header up front, then streams chunks through
    buffered ``write()`` calls — dirty pages live in the kernel page
    cache, never in process RSS, which keeps shard generation flat in
    memory regardless of catalogue size.
    """

    def __init__(self, path: pathlib.Path, shape: tuple[int, ...],
                 dtype=np.int64):
        self.path = path
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self._written = 0
        self._fp = open(path, "wb")
        # write_array_header_1_0 emits the magic prefix itself.
        np.lib.format.write_array_header_1_0(
            self._fp, {"descr": np.lib.format.dtype_to_descr(self.dtype),
                       "fortran_order": False, "shape": shape})

    def append(self, chunk: np.ndarray) -> None:
        chunk = np.ascontiguousarray(chunk, dtype=self.dtype)
        self._fp.write(chunk.tobytes())
        self._written += chunk.shape[0] if chunk.ndim else chunk.size

    def close(self) -> None:
        self._fp.close()
        if self._written != self.shape[0]:
            raise ValueError(f"{self.path}: wrote {self._written} rows, "
                             f"header promised {self.shape[0]}")


def _pair_block_plan(num_train: int, block_rows: int) -> list[int]:
    if num_train <= 0:
        return [0]
    full, rem = divmod(num_train, block_rows)
    return [block_rows] * full + ([rem] if rem else [])


class InteractionShardWriter:
    """Streaming writer for the shard layout, grouped-by-user input.

    ``append(users, items)`` must be called with non-decreasing user ids
    across all calls (each user's pairs contiguous); the pair blocks
    then double as the CSR grouping and ``csr_items`` is exactly the
    pair item column.  Degrees are accumulated incrementally so no
    per-interaction state is ever fully resident.
    """

    def __init__(self, out_dir: str | pathlib.Path, *, name: str,
                 num_users: int, num_items: int, num_train: int,
                 block_rows: int = DEFAULT_BLOCK_ROWS,
                 config: dict | None = None,
                 created_unix: float | None = None):
        self.out_dir = pathlib.Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.name = name
        self.num_users = num_users
        self.num_items = num_items
        self.num_train = num_train
        self.block_rows = block_rows
        self.config = dict(config or {})
        self.created_unix = (time.time() if created_unix is None
                             else created_unix)
        self._block_plan = _pair_block_plan(num_train, block_rows)
        self._block_index = 0
        self._block_written = 0
        self._pair_stream: _NpyStream | None = None
        self._csr_stream = _NpyStream(self.out_dir / "csr_items.npy",
                                      (num_train,))
        self._user_counts = np.zeros(num_users, dtype=np.int64)
        self._item_counts = np.zeros(num_items, dtype=np.int64)
        self._last_user = -1
        self._total = 0

    def _block_name(self, index: int) -> str:
        return f"pairs-{index:03d}.npy"

    def _open_block(self) -> _NpyStream:
        rows = self._block_plan[self._block_index]
        return _NpyStream(self.out_dir / self._block_name(self._block_index),
                          (rows, 2))

    def append(self, users: np.ndarray, items: np.ndarray) -> None:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.size == 0:
            return
        if users[0] < self._last_user or np.any(np.diff(users) < 0):
            raise ValueError("append() requires non-decreasing user ids")
        if users[-1] >= self.num_users or items.min() < 0 \
                or items.max() >= self.num_items:
            raise ValueError("pair ids out of range for the catalogue")
        self._last_user = int(users[-1])
        self._total += len(users)
        if self._total > self.num_train:
            raise ValueError(f"more than the promised {self.num_train} pairs")
        np.add.at(self._user_counts, users, 1)
        np.add.at(self._item_counts, items, 1)
        self._csr_stream.append(items)
        pairs = np.column_stack([users, items])
        lo = 0
        while lo < len(pairs):
            if self._pair_stream is None:
                self._pair_stream = self._open_block()
                self._block_written = 0
            room = self._block_plan[self._block_index] - self._block_written
            take = min(room, len(pairs) - lo)
            self._pair_stream.append(pairs[lo:lo + take])
            self._block_written += take
            lo += take
            if self._block_written == self._block_plan[self._block_index]:
                self._pair_stream.close()
                self._pair_stream = None
                self._block_index += 1

    def close(self, test_pairs: np.ndarray | None = None) -> pathlib.Path:
        if self._total != self.num_train:
            raise ValueError(f"wrote {self._total} pairs, promised "
                             f"{self.num_train}")
        if self._pair_stream is not None:  # only for num_train == 0
            self._pair_stream.close()
            self._pair_stream = None
        if self.num_train == 0:
            np.save(self.out_dir / self._block_name(0),
                    np.empty((0, 2), dtype=np.int64))
        self._csr_stream.close()
        indptr = np.concatenate([np.zeros(1, dtype=np.int64),
                                 np.cumsum(self._user_counts)])
        np.save(self.out_dir / "indptr.npy", indptr)
        np.save(self.out_dir / "item_degrees.npy", self._item_counts)
        if test_pairs is None:
            test_pairs = np.empty((0, 2), dtype=np.int64)
        np.save(self.out_dir / "test_pairs.npy",
                np.asarray(test_pairs, dtype=np.int64))
        manifest = {
            "schema": INTERACTION_SHARDS_SCHEMA,
            "name": self.name,
            "num_users": self.num_users,
            "num_items": self.num_items,
            "num_train": self.num_train,
            "num_test": int(len(test_pairs)),
            "block_rows": self.block_rows,
            "pair_blocks": [
                {"path": self._block_name(i), "rows": rows}
                for i, rows in enumerate(self._block_plan)
            ],
            "config": self.config,
            "created_unix": self.created_unix,
        }
        path = self.out_dir / _MANIFEST_NAME
        path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        return self.out_dir


def write_interaction_shards(dataset: InteractionDataset,
                             out_dir: str | pathlib.Path, *,
                             block_rows: int = DEFAULT_BLOCK_ROWS
                             ) -> ShardedInteractionSource:
    """Materialize an in-memory dataset as an interaction-shard dir.

    Pair blocks preserve the dataset's original pair order, so
    ``source.pairs(idx) == dataset.train_pairs[idx]`` — the property the
    streamed-epoch parity contract rests on.
    """
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    pairs = np.asarray(dataset.train_pairs, dtype=np.int64)
    plan = _pair_block_plan(len(pairs), block_rows)
    lo = 0
    for index, rows in enumerate(plan):
        np.save(out / f"pairs-{index:03d}.npy", pairs[lo:lo + rows])
        lo += rows
    indptr, items = dataset_train_csr(dataset)
    np.save(out / "indptr.npy", indptr)
    np.save(out / "csr_items.npy", items)
    np.save(out / "item_degrees.npy",
            np.asarray(dataset.item_popularity, dtype=np.int64))
    np.save(out / "test_pairs.npy",
            np.asarray(dataset.test_pairs, dtype=np.int64))
    manifest = {
        "schema": INTERACTION_SHARDS_SCHEMA,
        "name": dataset.name,
        "num_users": dataset.num_users,
        "num_items": dataset.num_items,
        "num_train": int(len(pairs)),
        "num_test": int(len(dataset.test_pairs)),
        "block_rows": block_rows,
        "pair_blocks": [{"path": f"pairs-{i:03d}.npy", "rows": rows}
                        for i, rows in enumerate(plan)],
        "config": {},
        "created_unix": time.time(),
    }
    (out / _MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return ShardedInteractionSource(out)


def is_interaction_shards(path: str | pathlib.Path) -> bool:
    return (pathlib.Path(path) / _MANIFEST_NAME).is_file()
