"""Out-of-core model tables: mmap-backed embeddings for million-scale MF.

The sparse-grad training path already touches only the sampled rows of
each embedding table per step (``take_rows(sparse_grad=True)`` +
``SparseAdam``'s lazily allocated moments), so the only dense state left
is the tables themselves.  This module keeps them on disk:

* :func:`init_mmap_mf_tables` draws the Xavier tables chunk-by-chunk
  straight into ``.npy`` memmaps — **byte-identical** to the in-memory
  ``MF(rng=seed)`` initialization, because row-block ``uniform`` draws
  consume the generator's value stream in the same order and the bound
  comes from the full-table fans (:func:`~repro.nn.init.xavier_limit`).
* :func:`open_mmap_mf` wraps the on-disk tables in an :class:`MF` whose
  parameters alias the memmaps (``Embedding(weight=...)``), so in-place
  optimizer updates dirty only the touched pages and the OS writes them
  back; process RSS follows the *touched* rows, not the catalogue.
* :func:`flush_model` forces dirty pages to disk (after an epoch /
  before an export reads the same files).

Training at scale goes through the normal ``Trainer`` with
``grad_mode="sparse"`` and an out-of-core
:class:`~repro.data.source.ShardedInteractionSource` — the parity suite
(``tests/test_outofcore.py``) pins streamed-epoch parameters
byte-identical to the in-memory epoch at small scale.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.models.mf import MF
from repro.nn.init import xavier_limit
from repro.tensor.random import spawn_rngs

__all__ = ["init_mmap_table", "init_mmap_mf_tables", "open_mmap_mf",
           "flush_model", "USER_TABLE", "ITEM_TABLE"]

USER_TABLE = "user_table.npy"
ITEM_TABLE = "item_table.npy"
DEFAULT_CHUNK_ROWS = 65_536


def init_mmap_table(path: str | pathlib.Path, num_rows: int, dim: int,
                    rng, *, chunk_rows: int = DEFAULT_CHUNK_ROWS
                    ) -> pathlib.Path:
    """Write a Xavier-uniform ``(num_rows, dim)`` table as a ``.npy`` memmap.

    Drawn in ``chunk_rows`` row blocks from ``rng`` — the value stream
    equals one full-shape ``xavier_uniform`` call, so bytes match the
    in-memory initialization; only ``chunk_rows * dim`` doubles are ever
    resident.
    """
    path = pathlib.Path(path)
    bound = xavier_limit((num_rows, dim))
    table = np.lib.format.open_memmap(path, mode="w+", dtype=np.float64,
                                      shape=(num_rows, dim))
    try:
        for lo in range(0, num_rows, chunk_rows):
            hi = min(lo + chunk_rows, num_rows)
            table[lo:hi] = rng.uniform(-bound, bound, size=(hi - lo, dim))
        table.flush()
    finally:
        del table
    return path


def init_mmap_mf_tables(table_dir: str | pathlib.Path, num_users: int,
                        num_items: int, dim: int, rng=None, *,
                        chunk_rows: int = DEFAULT_CHUNK_ROWS) -> pathlib.Path:
    """Initialize on-disk MF user/item tables, mirroring ``MF(rng=...)``.

    Uses the same ``spawn_rngs(rng, 2)`` user/item split as the ``MF``
    constructor, so ``open_mmap_mf(dir)`` starts from byte-identical
    parameters to ``MF(num_users, num_items, dim, rng=rng)``.
    """
    table_dir = pathlib.Path(table_dir)
    table_dir.mkdir(parents=True, exist_ok=True)
    user_rng, item_rng = spawn_rngs(rng, 2)
    init_mmap_table(table_dir / USER_TABLE, num_users, dim, user_rng,
                    chunk_rows=chunk_rows)
    init_mmap_table(table_dir / ITEM_TABLE, num_items, dim, item_rng,
                    chunk_rows=chunk_rows)
    return table_dir


def open_mmap_mf(table_dir: str | pathlib.Path, *, mode: str = "r+") -> MF:
    """Open on-disk tables as an :class:`MF` aliasing the memmaps.

    ``mode="r+"`` (default) makes optimizer updates land in the files;
    use ``mode="r"`` for read-only consumers such as the exporter.
    """
    table_dir = pathlib.Path(table_dir)
    users = np.load(table_dir / USER_TABLE, mmap_mode=mode)
    items = np.load(table_dir / ITEM_TABLE, mmap_mode=mode)
    if users.ndim != 2 or items.ndim != 2 or users.shape[1] != items.shape[1]:
        raise ValueError(f"{table_dir}: malformed MF tables "
                         f"{users.shape} / {items.shape}")
    return MF(users.shape[0], items.shape[0], users.shape[1],
              tables=(users, items))


def flush_model(model) -> None:
    """Flush every memmap-backed parameter of ``model`` to disk."""
    for param in model.parameters():
        candidate = param.data
        while candidate is not None:
            if isinstance(candidate, np.memmap):
                candidate.flush()
                break
            candidate = getattr(candidate, "base", None)
