"""Model checkpointing to ``.npz`` files."""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.models.base import Recommender

__all__ = ["save_checkpoint", "load_checkpoint"]

_META_KEY = "__meta__"


def save_checkpoint(model: Recommender, path) -> None:
    """Persist a model's parameters (and basic metadata) to ``path``.

    The file is a standard ``.npz`` archive: one array per named
    parameter plus a JSON metadata entry recording the model class and
    entity counts, so mismatched loads fail loudly.
    """
    path = pathlib.Path(path)
    state = model.state_dict()
    meta = json.dumps({
        "model_class": type(model).__name__,
        "num_users": model.num_users,
        "num_items": model.num_items,
        "dim": model.dim,
    })
    np.savez(path, **state, **{_META_KEY: np.asarray(meta)})


def load_checkpoint(model: Recommender, path) -> None:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Raises
    ------
    ValueError
        If the checkpoint was written by a different model class or a
        differently-sized model.
    """
    path = pathlib.Path(path)
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive[_META_KEY]))
        if meta["model_class"] != type(model).__name__:
            raise ValueError(
                f"checkpoint is for {meta['model_class']}, "
                f"got {type(model).__name__}")
        if (meta["num_users"], meta["num_items"]) != (model.num_users,
                                                      model.num_items):
            raise ValueError("checkpoint entity counts do not match model")
        state = {key: archive[key] for key in archive.files
                 if key != _META_KEY}
    model.load_state_dict(state)
