"""Small grid-search helper.

The paper grid-searches temperatures, learning rates and regularization
per model/dataset.  :func:`grid_search` runs a factory over a cartesian
grid and returns all results sorted by the watched metric.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["GridPoint", "grid_search"]


@dataclass
class GridPoint:
    """One evaluated configuration."""

    params: dict
    metrics: dict[str, float]

    def metric(self, name: str) -> float:
        return self.metrics.get(name, float("-inf"))


def grid_search(run_fn, grid: dict[str, list], watch_metric: str = "ndcg@20",
                verbose: bool = False) -> list[GridPoint]:
    """Evaluate ``run_fn(**params)`` over the cartesian grid.

    Parameters
    ----------
    run_fn:
        Callable returning a metrics dict (e.g. wraps ``train_model``).
    grid:
        Mapping from parameter name to candidate values.
    watch_metric:
        Results are sorted descending by this metric.

    Returns
    -------
    List of :class:`GridPoint`, best first.
    """
    keys = sorted(grid)
    points: list[GridPoint] = []
    for values in itertools.product(*(grid[k] for k in keys)):
        params = dict(zip(keys, values))
        metrics = run_fn(**params)
        if not isinstance(metrics, dict):
            raise TypeError("run_fn must return a metrics dict, got "
                            f"{type(metrics).__name__}")
        points.append(GridPoint(params=params, metrics=metrics))
        if verbose:
            shown = metrics.get(watch_metric, float("nan"))
            print(f"grid {params} -> {watch_metric}={shown:.4f}")
    points.sort(key=lambda p: p.metric(watch_metric), reverse=True)
    return points
