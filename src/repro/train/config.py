"""Training configuration dataclass."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TrainConfig"]


@dataclass
class TrainConfig:
    """Hyperparameters of one training run.

    Mirrors the paper's search space (Sec. V-A): Adam learning rate in
    {1e-3, 5e-3, 1e-4}, L2 coefficient in {1e-9 .. 1e-1}, number of
    negatives in {200, 400, 800, 1500} (scaled down here), temperatures
    in [0.05, 1.0].
    """

    epochs: int = 30
    batch_size: int = 1024
    learning_rate: float = 5e-3
    weight_decay: float = 1e-6
    n_negatives: int = 64
    #: "uniform" | "in-batch" | "popularity"
    sampler: str = "uniform"
    #: false-negative intensity (Figs. 3/8); 0 disables
    rnoise: float = 0.0
    #: evaluate every N epochs (0 = only at the end)
    eval_every: int = 0
    #: stop early if the watched metric has not improved for N evals
    patience: int = 0
    #: metric watched for early stopping / best checkpoint
    watch_metric: str = "ndcg@20"
    #: "dense" scores the batch against the full catalogue and trains
    #: with dense Adam; "sparse" scores only the sampled rows
    #: (``sampled_batch_scores``) and trains with ``SparseAdam``, making
    #: per-step cost scale with the batch instead of the catalogue
    #: (see ``docs/training.md``).
    grad_mode: str = "dense"
    #: sparse-optimizer mode: "lazy" (touched-rows-only, the fast
    #: default) or "exact" (dense-Adam-equivalent lazy catch-up).
    sparse_mode: str = "lazy"
    seed: int = 0
    verbose: bool = False

    def __post_init__(self):
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.sampler not in ("uniform", "in-batch", "popularity"):
            raise ValueError(f"unknown sampler {self.sampler!r}")
        if self.patience and not self.eval_every:
            raise ValueError("patience requires eval_every > 0")
        if self.grad_mode not in ("dense", "sparse"):
            raise ValueError(f"grad_mode must be dense/sparse, "
                             f"got {self.grad_mode!r}")
        if self.sparse_mode not in ("lazy", "exact"):
            raise ValueError(f"sparse_mode must be lazy/exact, "
                             f"got {self.sparse_mode!r}")

    def replace(self, **kwargs) -> "TrainConfig":
        """Return a copy with some fields overridden."""
        from dataclasses import replace as _replace
        return _replace(self, **kwargs)
