"""Mini-batch training loop.

Connects the pieces: a backbone from :mod:`repro.models`, a loss from
:mod:`repro.losses`, a sampler from :mod:`repro.data.sampling` and the
evaluator.  Supports the paper's protocol: Adam, optional periodic
evaluation with early stopping on NDCG@20, model-specific auxiliary
losses (SSL branches) and post-step hooks (CML projection).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.sampling import (InBatchSampler, PopularityNegativeSampler,
                                 UniformNegativeSampler)
from repro.eval.evaluator import Evaluator
from repro.losses.base import Loss
from repro.models.base import Recommender
from repro.nn.optim import Adam, SparseAdam
from repro.obs.metrics import get_registry
from repro.tensor.random import ensure_rng, spawn_rngs
from repro.tensor.sparse import RowSparseGrad
from repro.train.config import TrainConfig

__all__ = ["TrainResult", "Trainer", "train_model"]


@dataclass
class TrainResult:
    """Outcome of a training run."""

    model: Recommender
    #: loss value per epoch
    loss_history: list[float] = field(default_factory=list)
    #: (epoch, metrics dict) for each evaluation
    eval_history: list[tuple[int, dict[str, float]]] = field(default_factory=list)
    #: metrics of the best (or final) evaluation
    final_metrics: dict[str, float] = field(default_factory=dict)
    best_epoch: int = -1

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


class Trainer:
    """Drive one (model, loss, dataset) training run.

    Parameters
    ----------
    model, loss, dataset:
        The three pluggable components.  ``dataset`` may be an
        in-memory :class:`~repro.data.dataset.InteractionDataset` or
        any :class:`~repro.data.source.InteractionSource` (e.g. an
        out-of-core ``ShardedInteractionSource``); sources stream
        epochs without dense per-catalogue state but carry no held-out
        split, so periodic evaluation / early stopping require a real
        dataset (or an explicit ``evaluator``).
    config:
        Hyperparameters; see :class:`~repro.train.config.TrainConfig`.
    evaluator:
        Optional pre-built evaluator (to share cutoffs across runs).
    """

    def __init__(self, model: Recommender, loss: Loss,
                 dataset, config: TrainConfig,
                 evaluator: Evaluator | None = None):
        self.model = model
        self.loss = loss
        self.dataset = dataset
        self.config = config
        sampler_rng, self._epoch_rng = spawn_rngs(config.seed, 2)
        self.sampler = self._build_sampler(sampler_rng)
        if config.grad_mode == "sparse":
            self.optimizer = SparseAdam(
                model.parameters(), lr=config.learning_rate,
                weight_decay=config.weight_decay, mode=config.sparse_mode)
        else:
            self.optimizer = Adam(model.parameters(),
                                  lr=config.learning_rate,
                                  weight_decay=config.weight_decay)
        # Training telemetry.  All per-step instrumentation is gated on
        # ``self._metrics_on`` so a disabled registry costs nothing —
        # the perf harness times train_step() directly and must not pay
        # for clock reads or grad introspection it didn't ask for.
        registry = get_registry()
        self._metrics_on = registry.enabled
        if self._metrics_on:
            self._ctr_steps = registry.counter(
                "train.steps", "optimizer steps taken")
            self._ctr_epochs = registry.counter(
                "train.epochs", "training epochs completed")
            self._hist_step = registry.histogram(
                "train.step_ms", "wall time of one train_step() in ms")
            self._hist_epoch_loss = registry.histogram(
                "train.epoch_loss", "mean training loss per epoch")
            self._hist_touched = registry.histogram(
                "train.touched_rows",
                "embedding rows touched per step (row-sparse grads only)")
        if evaluator is None and (config.eval_every or config.patience):
            if not isinstance(dataset, InteractionDataset):
                raise ValueError(
                    "eval_every/patience need an InteractionDataset (or an "
                    "explicit evaluator); interaction sources carry no test "
                    "split")
            evaluator = Evaluator(dataset, ks=(20,))
        self.evaluator = evaluator

    @property
    def epoch_rng(self):
        """RNG driving per-epoch model hooks (public for the perf harness)."""
        return self._epoch_rng

    def _build_sampler(self, rng):
        cfg = self.config
        if cfg.sampler == "in-batch":
            if cfg.rnoise:
                raise ValueError("rnoise requires the uniform sampler")
            return InBatchSampler(self.dataset, batch_size=cfg.batch_size,
                                  rng=rng)
        if cfg.sampler == "popularity":
            return PopularityNegativeSampler(
                self.dataset, n_negatives=cfg.n_negatives,
                batch_size=cfg.batch_size, rng=rng)
        return UniformNegativeSampler(
            self.dataset, n_negatives=cfg.n_negatives,
            batch_size=cfg.batch_size, rnoise=cfg.rnoise, rng=rng)

    # ------------------------------------------------------------------
    def fit(self) -> TrainResult:
        cfg = self.config
        result = TrainResult(model=self.model)
        best_value = -np.inf
        best_state = None
        stale = 0
        self.model.train()
        for epoch in range(1, cfg.epochs + 1):
            self.model.on_epoch_start(self._epoch_rng)
            if hasattr(self.loss, "set_epoch"):
                self.loss.set_epoch(epoch, cfg.epochs)
            epoch_loss = self._run_epoch()
            result.loss_history.append(epoch_loss)
            if self._metrics_on:
                self._ctr_epochs.inc()
                self._hist_epoch_loss.observe(epoch_loss)
            if cfg.verbose:
                print(f"[{self.dataset.name}] epoch {epoch:3d} "
                      f"loss={epoch_loss:.4f}")
            should_eval = cfg.eval_every and (epoch % cfg.eval_every == 0)
            if not should_eval:
                continue
            self._flush_optimizer()
            metrics = self.evaluator.evaluate(self.model).metrics
            result.eval_history.append((epoch, metrics))
            value = metrics.get(cfg.watch_metric, -np.inf)
            if value > best_value:
                best_value = value
                best_state = self.model.state_dict()
                result.best_epoch = epoch
                stale = 0
            else:
                stale += 1
                if cfg.patience and stale >= cfg.patience:
                    break
        self._flush_optimizer()
        if best_state is not None:
            self.model.load_state_dict(best_state)
            result.final_metrics = dict(
                result.eval_history[-1 - stale][1]) if result.eval_history else {}
        if self.evaluator is not None and not result.final_metrics:
            result.final_metrics = self.evaluator.evaluate(self.model).metrics
        self.model.eval()
        # Don't let a long-lived trained model pin its last training
        # step's autograd subgraph through the propagation memo.
        invalidate = getattr(self.model, "invalidate_propagation_cache", None)
        if invalidate is not None:
            invalidate()
        return result

    def _run_epoch(self) -> float:
        total, count = 0.0, 0
        for batch in self.sampler.epoch():
            total += self.train_step(batch) * len(batch)
            count += len(batch)
        return total / max(count, 1)

    def _flush_optimizer(self) -> None:
        """Replay pending exact-mode sparse updates before observation.

        An ``exact``-mode sparse optimizer defers zero-gradient row
        updates until the row's next touch; anything that *reads*
        parameters (evaluation, checkpointing, the final model) must
        see the caught-up state, or exact mode would silently diverge
        from the dense trajectory at exactly the points we measure it.
        ``flush`` is a no-op on every other optimizer.
        """
        self.optimizer.flush()

    def train_step(self, batch) -> float:
        """One optimizer step on a prepared batch; returns the batch loss.

        This is the canonical training step — the perf harness
        (:mod:`repro.experiments.perf`) times exactly this method, so
        benchmark numbers always measure what training actually runs.
        In ``grad_mode="sparse"`` the batch is scored through
        :meth:`~repro.models.base.Recommender.sampled_batch_scores`
        (row gathers only), so the backward produces row-sparse
        gradients for the sparse optimizer.
        """
        started = time.perf_counter() if self._metrics_on else 0.0
        self.optimizer.zero_grad()
        loss_t = self.model.custom_loss(batch)
        if loss_t is None:
            if self.config.grad_mode == "sparse":
                pos, neg = self.model.sampled_batch_scores(batch)
            else:
                pos, neg = self.model.batch_scores(batch)
            loss_t = self.loss(pos, neg)
        aux = self.model.auxiliary_loss(batch)
        if aux is not None:
            loss_t = loss_t + aux
        loss_t.backward()
        self.optimizer.step()
        self.model.post_step()
        if self._metrics_on:
            self._hist_step.observe((time.perf_counter() - started) * 1e3)
            self._ctr_steps.inc()
            # Gradients survive step() (cleared by the next zero_grad),
            # so row-sparse nnz can still be read here.
            touched = 0
            sparse = False
            for p in self.optimizer.params:
                if isinstance(p.grad, RowSparseGrad):
                    sparse = True
                    touched += p.grad.nnz
            if sparse:
                self._hist_touched.observe(touched)
        return loss_t.item()


def train_model(model: Recommender, loss: Loss, dataset,
                config: TrainConfig | None = None, **overrides) -> TrainResult:
    """Convenience wrapper: build a :class:`Trainer` and fit.

    >>> result = train_model(model, get_loss("bsl"), dataset, epochs=20)
    """
    config = (config or TrainConfig()).replace(**overrides) if overrides else \
        (config or TrainConfig())
    return Trainer(model, loss, dataset, config).fit()
