"""Training loop, configuration and grid search."""

from repro.train.config import TrainConfig
from repro.train.trainer import Trainer, TrainResult, train_model
from repro.train.grid import GridPoint, grid_search

__all__ = ["TrainConfig", "Trainer", "TrainResult", "train_model",
           "GridPoint", "grid_search"]
