"""Training loop, configuration and grid search."""

from repro.train.config import TrainConfig
from repro.train.trainer import Trainer, TrainResult, train_model
from repro.train.grid import GridPoint, grid_search
from repro.train.outofcore import (init_mmap_table, init_mmap_mf_tables,
                                   open_mmap_mf, flush_model)

__all__ = ["TrainConfig", "Trainer", "TrainResult", "train_model",
           "GridPoint", "grid_search", "init_mmap_table",
           "init_mmap_mf_tables", "open_mmap_mf", "flush_model"]
