"""Neural-network layer on top of the autograd substrate."""

from repro.nn.module import Module, Parameter
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.nn.dropout import Dropout
from repro.nn.optim import (Optimizer, SGD, Adam, SparseOptimizer,
                            SparseSGD, SparseAdam)
from repro.nn import init

__all__ = [
    "Module", "Parameter", "Embedding", "Linear", "Dropout",
    "Optimizer", "SGD", "Adam", "SparseOptimizer", "SparseSGD",
    "SparseAdam", "init",
]
