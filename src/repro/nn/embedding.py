"""Embedding table with gather forward / scatter-add backward.

This is the core trainable object of every collaborative-filtering
backbone in the paper: user and item ID embeddings.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import xavier_uniform
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, ops

__all__ = ["Embedding"]


class Embedding(Module):
    """A learnable lookup table of shape ``(num_embeddings, dim)``.

    Parameters
    ----------
    num_embeddings:
        Vocabulary size (number of users or items).
    dim:
        Embedding dimensionality (the paper fixes 64, Fig. 12 sweeps it).
    init:
        Callable ``(shape, rng) -> ndarray``; defaults to Xavier uniform
        as the paper unifies initialization with Xavier.
    rng:
        Seed or generator for the initializer.
    sparse_grad:
        When True, lookups produce row-sparse gradients
        (:class:`~repro.tensor.sparse.RowSparseGrad`) touching only the
        gathered rows — pair with ``SparseAdam``/``SparseSGD``; dense
        optimizers reject sparse gradients.  Mirrors
        ``torch.nn.Embedding(sparse=True)``.
    weight:
        Pre-built ``(num_embeddings, dim)`` float64 table to wrap
        instead of drawing a fresh one — the out-of-core path passes a
        writable ``np.memmap`` here so optimizer updates land directly
        in the on-disk table.  Mutually exclusive with ``init``/``rng``.
    """

    def __init__(self, num_embeddings: int, dim: int, init=None, rng=None,
                 sparse_grad: bool = False, weight=None):
        super().__init__()
        if num_embeddings <= 0 or dim <= 0:
            raise ValueError("num_embeddings and dim must be positive, got "
                             f"{num_embeddings} x {dim}")
        if weight is not None:
            if init is not None or rng is not None:
                raise ValueError("weight= is mutually exclusive with "
                                 "init=/rng=")
            if weight.shape != (num_embeddings, dim):
                raise ValueError(f"weight shape {weight.shape} does not match "
                                 f"({num_embeddings}, {dim})")
            if weight.dtype != np.float64:
                raise ValueError(f"weight must be float64, got {weight.dtype}")
            self.weight = Parameter(weight)
        else:
            initializer = init if init is not None else xavier_uniform
            self.weight = Parameter(initializer((num_embeddings, dim),
                                                rng=rng))
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.sparse_grad = bool(sparse_grad)

    def forward(self, indices) -> Tensor:
        """Look up rows; ``indices`` may be any integer array shape."""
        return ops.take_rows(self.weight, np.asarray(indices, dtype=np.int64),
                             sparse_grad=self.sparse_grad)

    def all(self) -> Tensor:
        """Return the full table as a tensor participating in the graph."""
        return self.weight

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.dim})"
