"""Module/Parameter containers, a minimal analogue of ``torch.nn``.

A :class:`Module` owns named :class:`Parameter` leaves and nested
sub-modules; ``parameters()`` walks the tree so optimizers can update
every trainable tensor of a model with one call.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor
from repro.tensor.tensor import bump_data_version

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A trainable leaf tensor (``requires_grad=True`` by construction)."""

    def __init__(self, data, name: str | None = None):
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True,
                         name=name)


class Module:
    """Base class for models and layers.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; this base class discovers them by introspection, mirroring
    the PyTorch registration-by-assignment idiom.
    """

    def __init__(self):
        self._training = True

    # ------------------------------------------------------------------
    # Parameter discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = ""):
        """Yield ``(name, Parameter)`` pairs over the module tree."""
        for attr, value in vars(self).items():
            if attr.startswith("_") and attr != "_training":
                inner = getattr(self, attr)
                if not isinstance(inner, (Parameter, Module, list, tuple)):
                    continue
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{name}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total count of trainable scalars."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Train / eval mode (affects dropout and perturbation layers)
    # ------------------------------------------------------------------
    @property
    def training(self) -> bool:
        return self._training

    def train(self) -> "Module":
        self._training = True
        for child in self._child_modules():
            child.train()
        return self

    def eval(self) -> "Module":
        self._training = False
        for child in self._child_modules():
            child.eval()
        return self

    def _child_modules(self):
        for value in vars(self).values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    # ------------------------------------------------------------------
    # State dict (checkpointing)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        # Validate every shape before the first in-place write so a bad
        # checkpoint cannot leave the model half-loaded (and the data
        # version un-bumped) when it raises.
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{p.data.shape} vs {state[name].shape}")
        for name, p in own.items():
            p.data[...] = state[name]
        bump_data_version()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError
