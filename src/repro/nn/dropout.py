"""Dropout layers.

NGCF applies message dropout inside its propagation layers, and the
paper's grid search toggles dropout on the GCN backbones.  Inverted
dropout keeps expected activations unchanged at train time and is the
identity at eval time.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor, as_tensor
from repro.tensor.random import ensure_rng

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout with probability ``p`` of zeroing each activation."""

    def __init__(self, p: float = 0.1, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = ensure_rng(rng)

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
