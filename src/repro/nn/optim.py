"""Optimizers: dense SGD/Adam and their row-sparse counterparts.

The paper trains every model with Adam; SGD is kept for tests and
ablations.  ``weight_decay`` implements the L2 penalty the paper
grid-searches over {1e-9 .. 1e-1}.

Row-sparse training (``docs/training.md``)
------------------------------------------
:class:`SparseAdam` and :class:`SparseSGD` consume the
:class:`~repro.tensor.sparse.RowSparseGrad` gradients produced by
``take_rows(..., sparse_grad=True)`` and update **only the touched
rows** of a table, so per-step optimizer cost scales with the batch
instead of the catalogue.  Both support two modes:

* ``"lazy"`` (the fast default) — exactly the ``torch.optim.SparseAdam``
  semantics: moments of untouched rows are never decayed and untouched
  rows never move.  ``weight_decay`` is *lazy regularization*: applied
  to a row only on the steps that touch it, so heavily-sampled rows are
  decayed more often (the FTRL-style convention of production
  recommenders).
* ``"exact"`` — numerically equivalent to the dense optimizer fed
  explicit zero gradients for untouched rows.  Each parameter keeps a
  per-row ``last step`` clock; when a row is touched, the optimizer
  first *replays* the zero-gradient updates it skipped (moment decay,
  bias correction with the true historical step numbers, and the
  ``weight_decay`` pull each skipped step would have applied), then
  applies the real gradient.  :meth:`SparseOptimizer.flush` replays
  every row up to the current step — the trainer calls it before
  evaluation/checkpointing so observed parameters always match the
  dense trajectory.

The dense optimizers **reject** sparse gradients with a ``TypeError``
rather than silently densifying — mixing the two is almost always a
configuration bug (a model built with ``sparse_grad=True`` driven by a
plain ``Adam``).

Every ``step()`` bumps the global data version only when at least one
parameter actually changed, so a no-op step (all grads ``None``) cannot
spuriously invalidate :class:`~repro.graph.propagation.PropagationCache`
entries.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.tensor.sparse import RowSparseGrad
from repro.tensor.tensor import bump_data_version

__all__ = ["Optimizer", "SGD", "Adam", "SparseOptimizer", "SparseSGD",
           "SparseAdam"]


class Optimizer:
    """Base class holding the parameter list and the zero-grad hook."""

    def __init__(self, params, lr: float):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Apply any deferred updates; a no-op for dense optimizers.

        Callers that read parameters (evaluation, checkpointing) can
        always call this unconditionally; only ``exact``-mode sparse
        optimizers override it with real work.
        """

    @staticmethod
    def _reject_sparse(p: Parameter) -> None:
        """Dense optimizers do not silently densify row-sparse grads."""
        if isinstance(p.grad, RowSparseGrad):
            raise TypeError(
                "received a row-sparse gradient for a dense optimizer; use "
                "SparseAdam/SparseSGD (repro.nn.optim), or disable "
                "sparse_grad on the lookup (or call p.grad.densify()) if "
                "dense updates are intended")


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        changed = False
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            self._reject_sparse(p)
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g
            changed = True
        if changed:
            bump_data_version()


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction.

    Matches the PyTorch defaults the paper uses: ``betas=(0.9, 0.999)``,
    ``eps=1e-8``.  ``weight_decay`` adds an L2 term to the gradient
    (classic Adam-L2, as in ``torch.optim.Adam``).
    """

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        changed = False
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            self._reject_sparse(p)
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            changed = True
        if changed:
            bump_data_version()


class SparseOptimizer(Optimizer):
    """Shared machinery of the row-sparse optimizers.

    Subclasses implement :meth:`_dense_update` (full-table update, used
    for parameters whose gradient arrived dense — auxiliary weights,
    graph backbones whose gradients densified at propagation) and
    :meth:`_row_update` (update of a touched row subset).  ``exact``
    mode additionally requires :meth:`_replay` — one vectorized
    zero-gradient catch-up step over a row subset.
    """

    MODES = ("lazy", "exact")

    def __init__(self, params, lr: float, weight_decay: float, mode: str):
        super().__init__(params, lr)
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.weight_decay = weight_decay
        self.mode = mode
        self._t = 0
        #: per-parameter step clock of each row's last applied update
        #: (exact mode only).
        self._last = ([np.zeros(len(p.data), dtype=np.int64)
                       for p in self.params] if mode == "exact" else None)

    # ------------------------------------------------------------------
    def step(self) -> None:
        self._t += 1
        changed = False
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            if isinstance(p.grad, RowSparseGrad):
                rows, vals = p.grad.indices, p.grad.values
                if self.mode == "exact":
                    self._catch_up(i, rows, self._t - 1)
                self._row_update(i, rows, vals)
                if self.mode == "exact":
                    self._last[i][rows] = self._t
            else:
                if self.mode == "exact":
                    # A dense gradient (auxiliary losses, graph models)
                    # touches every row, so the skipped zero-grad
                    # updates of previously-idle rows must be replayed
                    # first or this step would run on stale moments and
                    # the dense-parity contract would silently break.
                    self._catch_up(i, np.arange(len(p.data)), self._t - 1)
                self._dense_update(i)
                if self.mode == "exact":
                    self._last[i][:] = self._t
            changed = True
        if changed:
            bump_data_version()

    def flush(self) -> None:
        """Replay every pending zero-gradient update (exact mode).

        After ``flush()`` the parameters are bit-for-bit what the dense
        optimizer would hold after the same gradient stream.  A no-op in
        lazy mode (lazy rows intentionally never receive the skipped
        updates).
        """
        if self.mode != "exact":
            return
        changed = False
        for i, p in enumerate(self.params):
            stale = np.nonzero(self._last[i] < self._t)[0]
            if len(stale):
                self._catch_up(i, stale, self._t)
                self._last[i][stale] = self._t
                changed = True
        if changed:
            bump_data_version()

    # ------------------------------------------------------------------
    def _catch_up(self, i: int, rows: np.ndarray, upto: int) -> None:
        """Replay the zero-grad steps ``last[row]+1 .. upto`` per row."""
        last = self._last[i][rows]
        gaps = upto - last
        pending = gaps > 0
        if not pending.any():
            return
        rows, last, gaps = rows[pending], last[pending], gaps[pending]
        idle = self._idle_rows(i, rows)
        if self.weight_decay == 0.0 and idle.any():
            # Zero moments + zero grad + zero decay: the replayed steps
            # are exact no-ops, so the clock can jump for free.  This is
            # what keeps exact-mode cost amortized — a row's first touch
            # does not pay for the whole warm-up history.
            keep = ~idle
            rows, last, gaps = rows[keep], last[keep], gaps[keep]
            if len(rows) == 0:
                return  # callers advance the per-row clock themselves
        max_gap = int(gaps.max())
        for j in range(1, max_gap + 1):
            active = gaps >= j
            self._replay(i, rows[active], last[active] + j)
        # callers update self._last afterwards

    def _idle_rows(self, i: int, rows: np.ndarray) -> np.ndarray:
        """Boolean mask of rows whose replay would be a no-op."""
        raise NotImplementedError

    def _replay(self, i: int, rows: np.ndarray, step_nums: np.ndarray) -> None:
        raise NotImplementedError

    def _dense_update(self, i: int) -> None:
        raise NotImplementedError

    def _row_update(self, i: int, rows: np.ndarray,
                    vals: np.ndarray) -> None:
        raise NotImplementedError


class SparseSGD(SparseOptimizer):
    """SGD over row-sparse gradients.

    ``lazy``: touched rows get the classical momentum/decay update;
    untouched rows keep their velocity frozen (and never move).  With
    ``momentum=0`` and ``weight_decay=0`` lazy is already identical to
    dense SGD.  ``exact``: skipped velocity-decay and weight-decay
    steps are replayed on touch, matching dense SGD exactly.
    """

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0, mode: str = "lazy"):
        super().__init__(params, lr, weight_decay, mode)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def _apply(self, i: int, rows, g: np.ndarray) -> None:
        p, v = self.params[i], self._velocity[i]
        if self.weight_decay:
            g = g + self.weight_decay * p.data[rows]
        if self.momentum:
            v[rows] = self.momentum * v[rows] + g
            g = v[rows]
        p.data[rows] -= self.lr * g

    def _dense_update(self, i: int) -> None:
        self._apply(i, slice(None), self.params[i].grad)

    def _row_update(self, i, rows, vals) -> None:
        self._apply(i, rows, vals)

    def _idle_rows(self, i, rows) -> np.ndarray:
        if self.momentum == 0.0:
            return np.ones(len(rows), dtype=bool)
        v = self._velocity[i][rows]
        return ~v.reshape(len(rows), -1).any(axis=1)

    def _replay(self, i, rows, step_nums) -> None:
        self._apply(i, rows, np.zeros_like(self.params[i].data[rows]))


class SparseAdam(SparseOptimizer):
    """Adam over row-sparse gradients (``torch.optim.SparseAdam`` family).

    ``lazy``: exactly PyTorch's ``SparseAdam`` update — only touched
    rows have their moments decayed and bias-corrected against the
    *global* step count; ``weight_decay`` is lazy regularization
    (applied to a row only when it is touched).  ``exact``: per-row
    step clocks replay the skipped zero-gradient updates (including the
    per-step ``weight_decay`` pull) so the trajectory is numerically
    equivalent to dense :class:`Adam`; call :meth:`flush` (the trainer
    does) before reading parameters.
    """

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0,
                 mode: str = "lazy"):
        super().__init__(params, lr, weight_decay, mode)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _apply(self, i: int, rows, g: np.ndarray, step_nums) -> None:
        """One Adam update of ``rows`` at (per-row) step numbers."""
        p, m, v = self.params[i], self._m[i], self._v[i]
        b1, b2 = self.beta1, self.beta2
        if self.weight_decay:
            g = g + self.weight_decay * p.data[rows]
        m[rows] = b1 * m[rows] + (1.0 - b1) * g
        v[rows] = b2 * v[rows] + (1.0 - b2) * g * g
        steps = np.asarray(step_nums, dtype=np.float64)
        if steps.ndim:  # per-row bias correction during exact replay
            steps = steps.reshape((-1,) + (1,) * (p.data.ndim - 1))
        bias1 = 1.0 - b1 ** steps
        bias2 = 1.0 - b2 ** steps
        m_hat = m[rows] / bias1
        v_hat = v[rows] / bias2
        p.data[rows] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _dense_update(self, i: int) -> None:
        self._apply(i, slice(None), self.params[i].grad, self._t)

    def _row_update(self, i, rows, vals) -> None:
        self._apply(i, rows, vals, self._t)

    def _idle_rows(self, i, rows) -> np.ndarray:
        flat_m = self._m[i][rows].reshape(len(rows), -1)
        flat_v = self._v[i][rows].reshape(len(rows), -1)
        return ~(flat_m.any(axis=1) | flat_v.any(axis=1))

    def _replay(self, i, rows, step_nums) -> None:
        self._apply(i, rows, np.zeros_like(self.params[i].data[rows]),
                    step_nums)
