"""Optimizers: SGD (with momentum) and Adam.

The paper trains every model with Adam; SGD is kept for tests and
ablations.  ``weight_decay`` implements the decoupled L2 penalty the
paper grid-searches over {1e-9 .. 1e-1}.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.tensor.tensor import bump_data_version

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class holding the parameter list and the zero-grad hook."""

    def __init__(self, params, lr: float):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g
        bump_data_version()


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction.

    Matches the PyTorch defaults the paper uses: ``betas=(0.9, 0.999)``,
    ``eps=1e-8``.  ``weight_decay`` adds an L2 term to the gradient
    (classic Adam-L2, as in ``torch.optim.Adam``).
    """

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        bump_data_version()
