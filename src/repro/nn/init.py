"""Weight initializers.

The paper unifies initialization across models with Xavier (Glorot)
initialization; both the uniform and normal variants are provided, plus
a plain normal initializer for ablations.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.random import ensure_rng

__all__ = ["xavier_uniform", "xavier_normal", "normal", "xavier_limit"]


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initializer needs at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[1] * receptive, shape[0] * receptive


def xavier_limit(shape, gain: float = 1.0) -> float:
    """The Glorot-uniform bound ``a = gain * sqrt(6 / (fan_in+fan_out))``.

    Exposed so chunked initializers (e.g. the out-of-core table builder
    in :mod:`repro.train.outofcore`) can draw row blocks with the bound
    of the *full* table and stay byte-identical to a one-shot
    :func:`xavier_uniform` call over the same RNG.
    """
    fan_in, fan_out = _fans(tuple(shape))
    return gain * np.sqrt(6.0 / (fan_in + fan_out))


def xavier_uniform(shape, gain: float = 1.0, rng=None) -> np.ndarray:
    """Glorot uniform: U(-a, a) with ``a = gain * sqrt(6 / (fan_in+fan_out))``."""
    rng = ensure_rng(rng)
    a = xavier_limit(shape, gain)
    return rng.uniform(-a, a, size=shape)


def xavier_normal(shape, gain: float = 1.0, rng=None) -> np.ndarray:
    """Glorot normal: N(0, gain^2 * 2 / (fan_in+fan_out))."""
    rng = ensure_rng(rng)
    fan_in, fan_out = _fans(tuple(shape))
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def normal(shape, std: float = 0.1, rng=None) -> np.ndarray:
    """Plain zero-mean Gaussian initializer."""
    rng = ensure_rng(rng)
    return rng.normal(0.0, std, size=shape)
