"""Dense affine layer, used by the NGCF propagation transforms."""

from __future__ import annotations

from repro.nn.init import xavier_uniform
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, as_tensor, ops

__all__ = ["Linear"]


class Linear(Module):
    """``y = x W + b`` with Xavier-initialized ``W``.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    bias:
        Whether to include the additive bias term.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng=None):
        super().__init__()
        self.weight = Parameter(xavier_uniform((in_features, out_features), rng=rng))
        self.bias = Parameter([0.0] * out_features) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x) -> Tensor:
        out = ops.matmul(as_tensor(x), self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (f"Linear({self.in_features}, {self.out_features}, "
                f"bias={self.bias is not None})")
