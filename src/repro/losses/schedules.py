"""Temperature schedules for SL/BSL (paper Sec. VI-D / future work).

The paper's related-work section points at dynamic temperatures
(Kukleva et al., ICLR 2023: a cosine τ schedule improves long-tail
performance).  Through the DRO lens (Remark 3), scheduling τ means
scheduling the robustness radius over training: start broad (small τ,
large η) to explore hard worst cases, end narrow for stability — or the
reverse.  These wrappers make any temperature-bearing loss schedulable;
the Trainer calls :meth:`ScheduledLoss.set_epoch` once per epoch.
"""

from __future__ import annotations

import math

from repro.losses.base import Loss
from repro.losses.bsl import BSLLoss
from repro.losses.softmax import SoftmaxLoss
from repro.tensor import Tensor

__all__ = ["TemperatureSchedule", "ConstantSchedule", "CosineSchedule",
           "LinearSchedule", "ScheduledLoss", "ScheduledSoftmaxLoss",
           "ScheduledBSLLoss"]


class TemperatureSchedule:
    """Maps training progress ``t in [0, 1]`` to a temperature."""

    def __call__(self, progress: float) -> float:
        raise NotImplementedError

    @staticmethod
    def _check(progress: float) -> float:
        if not 0.0 <= progress <= 1.0:
            raise ValueError(f"progress must lie in [0, 1], got {progress}")
        return progress


class ConstantSchedule(TemperatureSchedule):
    def __init__(self, tau: float):
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.tau = tau

    def __call__(self, progress: float) -> float:
        self._check(progress)
        return self.tau


class CosineSchedule(TemperatureSchedule):
    """Cosine interpolation from ``tau_start`` to ``tau_end``.

    The schedule of Kukleva et al.: τ oscillates/anneals smoothly,
    trading hardness-awareness early for uniformity late (or vice
    versa, depending on the endpoint ordering).
    """

    def __init__(self, tau_start: float, tau_end: float):
        if tau_start <= 0 or tau_end <= 0:
            raise ValueError("temperatures must be positive")
        self.tau_start = tau_start
        self.tau_end = tau_end

    def __call__(self, progress: float) -> float:
        progress = self._check(progress)
        weight = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.tau_end + (self.tau_start - self.tau_end) * weight


class LinearSchedule(TemperatureSchedule):
    def __init__(self, tau_start: float, tau_end: float):
        if tau_start <= 0 or tau_end <= 0:
            raise ValueError("temperatures must be positive")
        self.tau_start = tau_start
        self.tau_end = tau_end

    def __call__(self, progress: float) -> float:
        progress = self._check(progress)
        return self.tau_start + (self.tau_end - self.tau_start) * progress


class ScheduledLoss(Loss):
    """Base for losses whose temperature follows a schedule.

    The trainer calls :meth:`set_epoch` before each epoch; subclasses
    rebuild their inner loss at the scheduled temperature(s).
    """

    def __init__(self):
        self._progress = 0.0

    def set_epoch(self, epoch: int, total_epochs: int) -> None:
        """Record training progress (1-indexed epoch)."""
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self._progress = min(1.0, max(0.0, (epoch - 1) / max(1, total_epochs - 1)))
        self._rebuild()

    def _rebuild(self) -> None:
        raise NotImplementedError


class ScheduledSoftmaxLoss(ScheduledLoss):
    """SL with a scheduled temperature."""

    name = "sl-scheduled"

    def __init__(self, schedule: TemperatureSchedule, **sl_kwargs):
        super().__init__()
        self.schedule = schedule
        self._sl_kwargs = sl_kwargs
        self._inner = SoftmaxLoss(tau=schedule(0.0), **sl_kwargs)

    @property
    def current_tau(self) -> float:
        return self._inner.tau

    def _rebuild(self) -> None:
        self._inner = SoftmaxLoss(tau=self.schedule(self._progress),
                                  **self._sl_kwargs)

    def compute(self, pos: Tensor, neg: Tensor) -> Tensor:
        return self._inner.compute(pos, neg)


class ScheduledBSLLoss(ScheduledLoss):
    """BSL with independently scheduled positive/negative temperatures."""

    name = "bsl-scheduled"

    def __init__(self, schedule1: TemperatureSchedule,
                 schedule2: TemperatureSchedule, pooling: str = "mean"):
        super().__init__()
        self.schedule1 = schedule1
        self.schedule2 = schedule2
        self.pooling = pooling
        self._inner = BSLLoss(tau1=schedule1(0.0), tau2=schedule2(0.0),
                              pooling=pooling)

    @property
    def current_taus(self) -> tuple[float, float]:
        return self._inner.tau1, self._inner.tau2

    def _rebuild(self) -> None:
        self._inner = BSLLoss(tau1=self.schedule1(self._progress),
                              tau2=self.schedule2(self._progress),
                              pooling=self.pooling)

    def compute(self, pos: Tensor, neg: Tensor) -> Tensor:
        return self._inner.compute(pos, neg)
