"""Loss-function interface.

Every recommendation loss in the paper (Eqs. 1-5, 18) consumes the model
scores of one mini-batch:

* ``pos_scores`` — shape ``(B,)``, the score ``f(u, i)`` of each
  (user, positive item) pair;
* ``neg_scores`` — shape ``(B, m)``, scores ``f(u, j)`` of ``m``
  sampled (or in-batch) negatives per pair;

and returns a scalar :class:`~repro.tensor.Tensor` to backpropagate.
Scores are raw similarities (cosine by default, see the model layer);
temperatures live inside the losses.
"""

from __future__ import annotations

from repro.tensor import Tensor, as_tensor

__all__ = ["Loss"]


class Loss:
    """Base class for pair/list losses over (positive, negatives) scores."""

    #: human-readable name used by the registry and report tables
    name: str = "loss"

    def __call__(self, pos_scores, neg_scores) -> Tensor:
        pos = as_tensor(pos_scores)
        neg = as_tensor(neg_scores)
        if pos.ndim != 1:
            raise ValueError(f"pos_scores must be 1-D, got shape {pos.shape}")
        if neg.ndim != 2:
            raise ValueError(f"neg_scores must be 2-D, got shape {neg.shape}")
        if pos.shape[0] != neg.shape[0]:
            raise ValueError("batch mismatch between positives "
                             f"({pos.shape[0]}) and negatives ({neg.shape[0]})")
        return self.compute(pos, neg)

    def compute(self, pos: Tensor, neg: Tensor) -> Tensor:
        raise NotImplementedError

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in sorted(vars(self).items())
                           if not k.startswith("_"))
        return f"{type(self).__name__}({params})"
