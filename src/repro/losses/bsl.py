"""Bilateral Softmax Loss (BSL), the paper's proposed loss (Eq. 18).

BSL mirrors the Log-Expectation-Exp structure of SL's negative part on
the positive side, with separate temperatures for the two sides:

``L_BSL(u) = -τ1 log E_i[exp(f(u,i)/τ1)] + τ2 log E_j[exp(f(u,j)/τ2)]``

Two batch estimators are provided:

* ``pooling="mean"`` — the paper's Algorithm 1/2 pseudocode: per-row
  ``-log( exp(pos/τ1) / (Σ exp(neg/τ2))^(τ1/τ2) )`` averaged over the
  batch.  The τ1/τ2 *ratio* decouples the positive pull strength from
  the negative hard-weighting (one extra line vs. SL).
* ``pooling="log_mean_exp"`` — the strict Eq. (18) estimator: rows are
  pooled with ``-τ1·log mean_b exp(ℓ_b/τ1)`` where
  ``ℓ_b = pos_b - τ2·log E_j exp(neg_bj/τ2)``.  The induced softmax
  weights down-weight low-score (likely false) positives directly; with
  ``τ1 = τ2`` and batch size 1 both estimators reduce to SL.

``"mean"`` is the default — it matches the paper's published algorithm
and keeps every row contributing to each step (the strict estimator's
softmax pooling concentrates the gradient on few rows at practical
temperatures, which slows optimization; the ablation bench compares
the two).
"""

from __future__ import annotations

from repro.losses.base import Loss
from repro.tensor import Tensor
from repro.tensor import functional as F

__all__ = ["BSLLoss"]

_POOLINGS = ("mean", "log_mean_exp")


class BSLLoss(Loss):
    """Bilateral Softmax Loss with positive/negative temperatures.

    Parameters
    ----------
    tau1:
        Positive-side temperature (controls positive-denoising radius;
        Fig. 13 sweeps the ratio ``τ1/τ2``).
    tau2:
        Negative-side temperature (same role as SL's ``τ``).
    pooling:
        Batch estimator, see module docstring.
    fused:
        Dispatch to the single-node fused kernel
        (:func:`repro.tensor.functional.fused_bsl_loss`); the
        compositional path (``fused=False``) remains the reference
        oracle for both poolings.
    """

    name = "bsl"

    def __init__(self, tau1: float = 0.1, tau2: float = 0.1,
                 pooling: str = "mean", fused: bool = True):
        if tau1 <= 0 or tau2 <= 0:
            raise ValueError(f"temperatures must be positive, got {tau1}, {tau2}")
        if pooling not in _POOLINGS:
            raise ValueError(f"pooling must be one of {_POOLINGS}, got {pooling!r}")
        self.tau1 = tau1
        self.tau2 = tau2
        self.pooling = pooling
        self.fused = fused

    @property
    def ratio(self) -> float:
        """The robustness-controlling ratio ``τ1/τ2`` (Sec. V-E)."""
        return self.tau1 / self.tau2

    def compute(self, pos: Tensor, neg: Tensor) -> Tensor:
        if self.fused:
            return F.fused_bsl_loss(pos, neg, self.tau1, self.tau2,
                                    pooling=self.pooling)
        # Negative part: τ2 · log E_j exp(f(u,j)/τ2), the same DRO
        # structure as SL (Lemma 1).
        neg_part = self.tau2 * F.logmeanexp(neg / self.tau2, axis=1)
        if self.pooling == "mean":
            # Paper pseudocode: one extra line vs. SL — the pow(τ1/τ2)
            # on the denominator, i.e. a (τ1/τ2)-weighted negative part.
            row_loss = -pos / self.tau1 + (neg_part / self.tau2) * self.ratio
            return row_loss.mean()
        # Strict Eq. (18): log-E-exp over the positive side.  Rows with a
        # low robust margin ℓ_b receive exponentially less weight, which
        # is exactly the positive-denoising worst-case reweighting.
        margin = (pos - neg_part) / self.tau1
        return -self.tau1 * F.logmeanexp(margin)
