"""Auxiliary contrastive losses.

* :class:`InfoNCELoss` — the self-supervised alignment loss used by the
  SSL branches of SGL / SimGCL / LightGCL (Table III backbones).
* :class:`CosineContrastiveLoss` — SimpleX's CCL (Table II baseline):
  a margin-hinged cosine loss.
"""

from __future__ import annotations

from repro.losses.base import Loss
from repro.tensor import Tensor, as_tensor, ops
from repro.tensor import functional as F

__all__ = ["InfoNCELoss", "CosineContrastiveLoss"]


class InfoNCELoss:
    """InfoNCE between two views of the same nodes.

    Given L2-normalized view matrices ``z1, z2`` of shape ``(B, d)``,
    row ``b`` of ``z1`` must match row ``b`` of ``z2`` against all other
    rows (in-batch negatives):

    ``L = -E_b[ log exp(s_bb/τ) / Σ_k exp(s_bk/τ) ]``

    ``fused=True`` (default) dispatches to the single-node kernel
    :func:`repro.tensor.functional.fused_infonce_loss`; the
    compositional path below stays as the reference oracle.
    """

    name = "infonce"

    def __init__(self, tau: float = 0.2, fused: bool = True):
        if tau <= 0:
            raise ValueError(f"temperature must be positive, got {tau}")
        self.tau = tau
        self.fused = fused

    def __call__(self, z1, z2) -> Tensor:
        z1, z2 = as_tensor(z1), as_tensor(z2)
        if z1.shape != z2.shape or z1.ndim != 2:
            raise ValueError(f"views must share a 2-D shape, got {z1.shape} "
                             f"vs {z2.shape}")
        if self.fused:
            return F.fused_infonce_loss(z1, z2, self.tau)
        z1 = F.l2_normalize(z1, axis=1)
        z2 = F.l2_normalize(z2, axis=1)
        sims = F.pairwise_scores(z1, z2) / self.tau          # (B, B)
        import numpy as np
        diag = ops.getitem(sims, (np.arange(z1.shape[0]),
                                  np.arange(z1.shape[0])))
        row_loss = -diag + F.logsumexp(sims, axis=1)
        return row_loss.mean()


class CosineContrastiveLoss(Loss):
    """SimpleX's CCL: ``(1 - pos) + (w/m)·Σ_j relu(neg_j - margin)``."""

    name = "ccl"

    def __init__(self, margin: float = 0.4, negative_weight: float = 1.0):
        if not -1.0 <= margin <= 1.0:
            raise ValueError(f"margin must lie in [-1, 1], got {margin}")
        if negative_weight <= 0:
            raise ValueError("negative_weight must be positive")
        self.margin = margin
        self.negative_weight = negative_weight

    def compute(self, pos: Tensor, neg: Tensor) -> Tensor:
        pos_term = (1.0 - pos).mean()
        neg_term = F.relu(neg - self.margin).mean(axis=1).mean()
        return pos_term + self.negative_weight * neg_term
