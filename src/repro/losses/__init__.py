"""Loss functions: pointwise, pairwise, softmax (SL), bilateral (BSL)."""

from repro.losses.base import Loss
from repro.losses.pointwise import BCELoss, MSELoss
from repro.losses.pairwise import BPRLoss, MarginHingeLoss
from repro.losses.softmax import SoftmaxLoss
from repro.losses.bsl import BSLLoss
from repro.losses.contrastive import InfoNCELoss, CosineContrastiveLoss
from repro.losses.registry import get_loss, loss_names, LOSSES

__all__ = [
    "Loss", "BCELoss", "MSELoss", "BPRLoss", "MarginHingeLoss",
    "SoftmaxLoss", "BSLLoss",
    "InfoNCELoss", "CosineContrastiveLoss", "get_loss", "loss_names",
    "LOSSES",
]
