"""Loss registry: build losses by name, as the experiment specs do."""

from __future__ import annotations

from repro.losses.base import Loss
from repro.losses.bsl import BSLLoss
from repro.losses.contrastive import CosineContrastiveLoss
from repro.losses.pairwise import BPRLoss, MarginHingeLoss
from repro.losses.pointwise import BCELoss, MSELoss
from repro.losses.softmax import SoftmaxLoss

__all__ = ["LOSSES", "get_loss", "loss_names"]

LOSSES: dict[str, type] = {
    "bpr": BPRLoss,
    "bce": BCELoss,
    "mse": MSELoss,
    "sl": SoftmaxLoss,
    "bsl": BSLLoss,
    "ccl": CosineContrastiveLoss,
    "hinge": MarginHingeLoss,
}


def loss_names() -> list[str]:
    return sorted(LOSSES)


def get_loss(name: str, **kwargs) -> Loss:
    """Instantiate a loss by registry name with its keyword arguments.

    >>> get_loss("bsl", tau1=0.12, tau2=0.10).ratio
    1.2
    """
    key = name.lower()
    if key not in LOSSES:
        raise KeyError(f"unknown loss {name!r}; available: {loss_names()}")
    return LOSSES[key](**kwargs)
