"""Pointwise losses: BCE and MSE (paper Eqs. 1-2).

Pointwise losses treat recommendation as per-instance classification or
regression: positives are pushed toward label 1 and negatives toward 0,
with a balance coefficient ``c`` between the two sides.
"""

from __future__ import annotations

from repro.losses.base import Loss
from repro.tensor import Tensor
from repro.tensor import functional as F

__all__ = ["BCELoss", "MSELoss"]


class BCELoss(Loss):
    """Binary cross-entropy on implicit feedback.

    ``L = -E_i[log σ(f(u,i))] + c · E_j[-log(1 - σ(f(u,j)))]``

    Implemented through ``softplus`` for numerical stability:
    ``-log σ(x) = softplus(-x)`` and ``-log(1 - σ(x)) = softplus(x)``.

    Parameters
    ----------
    negative_weight:
        The coefficient ``c`` of Eq. (1) balancing the negative side.
    scale:
        Score scale applied before the logistic link.  Cosine scores live
        in [-1, 1], which saturates slowly; the paper's implementations
        divide by a temperature-like scale for pointwise losses too.
    """

    name = "bce"

    def __init__(self, negative_weight: float = 1.0, scale: float = 1.0):
        if negative_weight <= 0:
            raise ValueError("negative_weight must be positive")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.negative_weight = negative_weight
        self.scale = scale

    def compute(self, pos: Tensor, neg: Tensor) -> Tensor:
        pos_term = F.softplus(-pos / self.scale).mean()
        neg_term = F.softplus(neg / self.scale).mean()
        return pos_term + self.negative_weight * neg_term


class MSELoss(Loss):
    """Squared error against binary labels.

    ``L = E_i[(f(u,i) - 1)^2] + c · E_j[f(u,j)^2]``
    """

    name = "mse"

    def __init__(self, negative_weight: float = 1.0):
        if negative_weight <= 0:
            raise ValueError("negative_weight must be positive")
        self.negative_weight = negative_weight

    def compute(self, pos: Tensor, neg: Tensor) -> Tensor:
        pos_term = ((pos - 1.0) ** 2).mean()
        neg_term = (neg ** 2).mean()
        return pos_term + self.negative_weight * neg_term
