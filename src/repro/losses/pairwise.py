"""Pairwise loss: BPR (paper Eq. 3).

Bayesian Personalized Ranking pushes each positive above each sampled
negative through a log-sigmoid of the score difference.
"""

from __future__ import annotations

from repro.losses.base import Loss
from repro.tensor import Tensor
from repro.tensor import functional as F

__all__ = ["BPRLoss", "MarginHingeLoss"]


class BPRLoss(Loss):
    """``L = -E_{i,j}[log σ((f(u,i) - f(u,j)) / s)]``.

    Parameters
    ----------
    scale:
        Optional score scale (cosine scores are bounded in [-1, 1]; a
        scale < 1 sharpens the sigmoid, matching tuned implementations).
    """

    name = "bpr"

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale

    def compute(self, pos: Tensor, neg: Tensor) -> Tensor:
        diff = (pos.unsqueeze(1) - neg) / self.scale
        return (-F.log_sigmoid(diff)).mean()


class MarginHingeLoss(Loss):
    """CML's margin hinge: ``E_{i,j}[ relu(margin - (f(u,i) - f(u,j))) ]``.

    With CML's negative-squared-distance scores this is exactly the
    metric-learning triplet loss of Hsieh et al. (WWW 2017).
    """

    name = "hinge"

    def __init__(self, margin: float = 0.5):
        if margin <= 0:
            raise ValueError("margin must be positive")
        self.margin = margin

    def compute(self, pos: Tensor, neg: Tensor) -> Tensor:
        diff = pos.unsqueeze(1) - neg
        return F.relu(self.margin - diff).mean()
