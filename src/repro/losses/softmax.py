"""Softmax Loss (SL), paper Eqs. (4)-(5).

SL normalizes model predictions into a multinomial distribution and
optimizes positives against sampled negatives:

``L_SL(u) = -E_i[f(u,i)/τ] + E_i[log E_j[exp(f(u,j)/τ)]]``

The Log-Expectation-Exp structure on the negative side is, per Lemma 1,
exactly KL-constrained DRO over the pointwise loss — this module is the
reference implementation the DRO analysis tools in :mod:`repro.dro`
study.
"""

from __future__ import annotations

from repro.losses.base import Loss
from repro.tensor import Tensor, ops
from repro.tensor import functional as F

__all__ = ["SoftmaxLoss"]


class SoftmaxLoss(Loss):
    """Sampled softmax loss with temperature ``τ``.

    Parameters
    ----------
    tau:
        Temperature; per Remark 3 it is the Lagrange multiplier of the
        DRO problem and encodes the robustness radius ``η``.
    include_positive:
        Whether the positive score joins the denominator.  The paper
        (footnote 1) removes it, following decoupled contrastive
        learning; keep it for the ablation bench.
    scale_by_temperature:
        If True, multiply the loss by ``τ`` to match the exact Eq. (5)
        scaling instead of the conventional InfoNCE-style ``1/τ`` form.
        Both have identical optima; the default matches the pseudocode.
    fused:
        Dispatch to the single-node fused kernel
        (:func:`repro.tensor.functional.fused_softmax_loss`).  The
        compositional path (``fused=False``) is the reference oracle;
        both agree to numerical precision (see the fused-kernel contract
        in :mod:`repro.tensor`).
    """

    name = "sl"

    def __init__(self, tau: float = 0.1, include_positive: bool = False,
                 scale_by_temperature: bool = False, fused: bool = True):
        if tau <= 0:
            raise ValueError(f"temperature must be positive, got {tau}")
        self.tau = tau
        self.include_positive = include_positive
        self.scale_by_temperature = scale_by_temperature
        self.fused = fused

    def compute(self, pos: Tensor, neg: Tensor) -> Tensor:
        if self.fused:
            return F.fused_softmax_loss(
                pos, neg, self.tau, include_positive=self.include_positive,
                scale_by_temperature=self.scale_by_temperature)
        logits = neg / self.tau
        if self.include_positive:
            logits = ops.concatenate([pos.unsqueeze(1) / self.tau, logits],
                                     axis=1)
        row_loss = -pos / self.tau + F.logsumexp(logits, axis=1)
        loss = row_loss.mean()
        if self.scale_by_temperature:
            loss = loss * self.tau
        return loss
