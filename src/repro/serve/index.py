"""Top-K retrieval indexes over a frozen embedding snapshot.

Two interchangeable paths answer ``topk(user_ids, k)``:

* :class:`ExactTopKIndex` — chunked dense matmul over the float64
  tables.  It reproduces the offline
  :class:`~repro.eval.evaluator.Evaluator` protocol exactly: the same
  scoring formulas as
  :meth:`~repro.models.base.Recommender.predict_scores`, the same
  ``-inf`` seen-item scatter
  (:func:`repro.eval.masking.mask_seen_items`), and the same canonical
  ranking (:func:`repro.eval.metrics.rank_items`), so online
  recommendations are exactly the lists the paper's metrics were
  computed on.
* :class:`QuantizedTopKIndex` — the item table stored symmetric-int8
  per row (8x smaller than float64) and dequantized panel-by-panel into
  a float32 matmul.  Approximate (last-ulp rank flips are possible) but
  at paper scales it keeps >0.95 top-10 overlap with the exact path;
  the serve benchmark (``repro perf-serve``) reports the measured
  overlap alongside throughput.

Both indexes share masking and ranking plumbing via :class:`TopKIndex`,
so ``filter_seen`` semantics cannot drift between paths.

**Partition-invariant scoring.**  Dense BLAS matmuls are *not* bitwise
stable across matrix shapes: computing a score block as one large GEMM
versus per-shard sub-GEMMs can differ in the last ulp, which would make
sharded serving drift from the single-process answer.  Every score in
this module is therefore produced by a **fixed-shape panel kernel**
(:func:`build_panels` / :func:`panel_scores`): the item side is cut into
zero-padded panels of exactly :data:`PANEL_WIDTH` rows, so every GEMM
call has an identical ``(chunk_users, dim) @ (dim, PANEL_WIDTH)`` shape
regardless of catalogue size or shard boundaries.  A given (user, item)
pair then always runs through the same BLAS micro-kernel with the same
accumulation order, making scores a pure function of the two embedding
rows — the property the sharded router in :mod:`repro.serve.router`
needs for bit-identical scatter-gather (see ``docs/sharding.md``).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.eval.masking import mask_seen_items
from repro.eval.metrics import rank_items
from repro.serve.snapshot import EmbeddingSnapshot

__all__ = ["PANEL_WIDTH", "TopKResult", "TopKIndex", "ExactTopKIndex",
           "QuantizedTopKIndex", "build_index", "scoring_ready_users",
           "scoring_ready_items", "build_panels", "panel_scores",
           "quantize_rows", "quantized_panel_scores"]

#: Fixed item-panel width of every scoring GEMM.  Both sides of the
#: sharded-vs-unsharded parity contract must use the same width.
PANEL_WIDTH = 512


# ----------------------------------------------------------------------
# Shared scoring kernels (also used by repro.serve.shard)
# ----------------------------------------------------------------------
def scoring_ready_users(vectors: np.ndarray, scoring: str) -> np.ndarray:
    """Query-side prep: float64 cast plus cosine row-normalization.

    Mirrors ``predict_scores``: rows are selected *before* the
    normalization so the arithmetic matches element for element.  All
    operations are row-local, so gathering rows from user shards first
    cannot change the result.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if scoring == "cosine":
        vectors = vectors / (np.linalg.norm(vectors, axis=1,
                                            keepdims=True) + 1e-12)
    return vectors


def scoring_ready_items(items: np.ndarray, scoring: str) -> np.ndarray:
    """Catalogue-side prep with the scoring transform baked in.

    The float64 cast and the cosine ``+ 1e-12`` row-normalization are
    load-bearing for ranking parity — every index kind and every item
    shard must start from exactly this per-row transform.
    """
    items = np.asarray(items, dtype=np.float64)
    if scoring == "cosine":
        items = items / (np.linalg.norm(items, axis=1, keepdims=True)
                         + 1e-12)
    return items


def build_panels(items: np.ndarray, width: int = PANEL_WIDTH) -> np.ndarray:
    """Pack item rows into zero-padded ``(n_panels, width, dim)`` panels.

    The fixed panel width is what pins the GEMM shape (and therefore the
    BLAS kernel and its accumulation order) independently of how many
    items a table or shard holds.
    """
    if width <= 0:
        raise ValueError(f"panel width must be positive, got {width}")
    n, dim = items.shape
    n_panels = max(1, -(-n // width))
    panels = np.zeros((n_panels, width, dim), dtype=items.dtype)
    for p in range(n_panels):
        lo = p * width
        hi = min(lo + width, n)
        panels[p, :hi - lo] = items[lo:hi]
    return panels


def panel_scores(vectors: np.ndarray, panels: np.ndarray,
                 n_items: int) -> np.ndarray:
    """Dense ``(len(vectors), n_items)`` score block from padded panels.

    Every matmul is ``(m, dim) @ (dim, width)`` with ``width`` fixed by
    the panel layout, so a given (user, item) pair produces bitwise the
    same score no matter which panel — or which shard's panel — the item
    row sits in.
    """
    m = len(vectors)
    width = panels.shape[1]
    out = np.empty((m, n_items), dtype=np.float64)
    for p in range(panels.shape[0]):
        lo = p * width
        hi = min(lo + width, n_items)
        out[:, lo:hi] = (vectors @ panels[p].T)[:, :hi - lo]
    return out


def quantized_panel_scores(vectors32: np.ndarray, quantized: np.ndarray,
                           scales: np.ndarray, width: int) -> np.ndarray:
    """Score float32 user vectors against an int8 table, fixed panels.

    Dequantizes ``width`` rows at a time into one reused zero-padded
    float32 panel, so every GEMM is ``(m, dim) @ (dim, width)`` — the
    float32 counterpart of :func:`panel_scores`, carrying the same
    partition-invariance contract.  Both the unsharded
    :class:`QuantizedTopKIndex` and the per-shard quantized scorer must
    call exactly this loop; two copies could drift and break the
    sharded bit-parity.  Returns a float64 block.
    """
    n, dim = quantized.shape
    scores = np.empty((len(vectors32), n), dtype=np.float64)
    panel = np.zeros((width, dim), dtype=np.float32)
    for lo in range(0, n, width):
        hi = min(lo + width, n)
        panel[:hi - lo] = (quantized[lo:hi].astype(np.float32)
                           * scales[lo:hi, None])
        panel[hi - lo:] = 0.0
        scores[:, lo:hi] = (vectors32 @ panel.T)[:, :hi - lo]
    return scores


def quantize_rows(items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-row int8 quantization of a scoring-ready table.

    Returns ``(q, scales)`` with ``q[i] ≈ items[i] / scales[i]`` and
    ``scales[i] = max|items[i]| / 127``.  Row-local by construction, so
    a shard's rows quantize to exactly the same bytes as the same rows
    in the full catalogue.
    """
    peak = np.abs(items).max(axis=1)
    scales = np.where(peak > 0, peak / 127.0, 1.0)
    q = np.clip(np.rint(items / scales[:, None]), -127, 127).astype(np.int8)
    return q, scales.astype(np.float32)


@dataclasses.dataclass(frozen=True)
class TopKResult:
    """Ranked recommendations for one batch of users.

    ``items[r]`` are the top-K item ids for ``user_ids[r]``, best first;
    ``scores[r]`` are the corresponding model scores (the exact index
    returns the same float64 values the evaluator ranks on).

    ``coverage`` / ``failed_shards`` carry the degraded-result contract
    of the resilient router (``docs/robustness.md``): ``coverage`` is
    the fraction of the item catalogue actually scored (1.0 everywhere
    except a degraded scatter-gather answer), and ``failed_shards``
    names the item shards that missed their deadline budget.  Ranks a
    degraded merge could not fill are padded with item ``-1`` and score
    ``-inf`` — never silently filled from partial data.
    """

    user_ids: np.ndarray
    items: np.ndarray
    scores: np.ndarray
    k: int
    filtered_seen: bool
    coverage: float = 1.0
    failed_shards: tuple = ()

    def __len__(self) -> int:
        return len(self.user_ids)


class TopKIndex:
    """Shared chunking / masking / ranking skeleton of both index kinds.

    Parameters
    ----------
    snapshot:
        Loaded :class:`~repro.serve.snapshot.EmbeddingSnapshot`.
    chunk_users:
        Users scored per dense block; bounds the ``(chunk, n_items)``
        score buffer exactly like the evaluator's ``batch_users``.
    """

    #: subclass tag recorded in benchmarks and service cache keys
    kind = "abstract"

    def __init__(self, snapshot: EmbeddingSnapshot, chunk_users: int = 256):
        if chunk_users <= 0:
            raise ValueError(f"chunk_users must be positive, got {chunk_users}")
        self.snapshot = snapshot
        self.chunk_users = chunk_users

    # ------------------------------------------------------------------
    def topk(self, user_ids, k: int = 10,
             filter_seen: bool = True) -> TopKResult:
        """Rank the catalogue for a batch of users and keep the top ``k``.

        Parameters
        ----------
        user_ids:
            Integer array-like of user ids (any order, duplicates fine).
        k:
            List length; clipped to the catalogue size.
        filter_seen:
            Remove each user's training interactions from the candidate
            set (the evaluator's protocol).  Pass ``False`` to rank the
            full catalogue (e.g. for similar-item carousels).
        """
        users = np.atleast_1d(np.asarray(user_ids, dtype=np.int64))
        if users.ndim != 1:
            raise ValueError(f"user_ids must be 1-D, got shape {users.shape}")
        n_users = self.snapshot.manifest.num_users
        if len(users) and (users.min() < 0 or users.max() >= n_users):
            raise ValueError(f"user ids must lie in [0, {n_users})")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        k = min(k, self.snapshot.manifest.num_items)
        out_items = np.empty((len(users), k), dtype=np.int64)
        out_scores = np.empty((len(users), k), dtype=np.float64)
        for lo in range(0, len(users), self.chunk_users):
            chunk = users[lo:lo + self.chunk_users]
            scores = self._score_chunk(chunk)
            if filter_seen:
                mask_seen_items(scores, self.snapshot.seen_indptr,
                                self.snapshot.seen_items, chunk)
            top = rank_items(scores, k)
            out_items[lo:lo + len(chunk)] = top
            out_scores[lo:lo + len(chunk)] = np.take_along_axis(
                scores, top, axis=-1)
        return TopKResult(user_ids=users, items=out_items, scores=out_scores,
                          k=k, filtered_seen=filter_seen)

    # ------------------------------------------------------------------
    def refreshed(self, snapshot: EmbeddingSnapshot) -> "TopKIndex":
        """Rebuild this index over ``snapshot``, keeping tuning knobs.

        The exact and quantized indexes derive everything from the item
        table, so a refresh is a plain reconstruction; the ANN indexes
        override this with incremental posting-list maintenance.  The
        returned index serves ``snapshot`` — the receiver is untouched,
        so an in-flight request on the old index is never torn.
        """
        return type(self)(snapshot, chunk_users=self.chunk_users)

    # ------------------------------------------------------------------
    def _score_chunk(self, users: np.ndarray) -> np.ndarray:
        """Dense ``(len(users), n_items)`` float64 score block."""
        raise NotImplementedError

    def _user_vectors(self, users: np.ndarray) -> np.ndarray:
        """Gather the query-side rows and apply the scoring prep."""
        return scoring_ready_users(self.snapshot.users[users],
                                   self.snapshot.scoring)


class ExactTopKIndex(TopKIndex):
    """Exact retrieval: fixed-panel float64 matmul, evaluator-identical.

    Parameters
    ----------
    panel_width:
        Item rows per scoring GEMM (default :data:`PANEL_WIDTH`).  Both
        sides of a sharded parity comparison must use the same width.
    """

    kind = "exact"

    def __init__(self, snapshot: EmbeddingSnapshot, chunk_users: int = 256,
                 panel_width: int = PANEL_WIDTH):
        super().__init__(snapshot, chunk_users)
        self.panel_width = panel_width
        items = scoring_ready_items(snapshot.items, snapshot.scoring)
        self._n_items = len(items)
        self._panels = build_panels(items, panel_width)
        self._item_sq = ((items ** 2).sum(axis=1)
                         if snapshot.scoring == "euclidean" else None)

    def refreshed(self, snapshot: EmbeddingSnapshot) -> "ExactTopKIndex":
        return type(self)(snapshot, chunk_users=self.chunk_users,
                          panel_width=self.panel_width)

    @property
    def table_bytes(self) -> int:
        """Bytes held by the panelized float64 catalogue."""
        return self._panels.nbytes

    def _score_chunk(self, users: np.ndarray) -> np.ndarray:
        vectors = self._user_vectors(users)
        scores = panel_scores(vectors, self._panels, self._n_items)
        if self.snapshot.scoring == "euclidean":
            u_sq = (vectors ** 2).sum(axis=1, keepdims=True)
            return -(u_sq + self._item_sq - 2.0 * scores)
        return scores


class QuantizedTopKIndex(TopKIndex):
    """Approximate retrieval over a symmetric-int8 item table.

    Each (scoring-ready) item row ``i`` is stored as
    ``int8 q[i] ≈ items[i] / scale[i]`` with
    ``scale[i] = max|items[i]| / 127``, an 8x compression of the
    catalogue side.  Scoring dequantizes :data:`PANEL_WIDTH` rows at a
    time into a reused zero-padded float32 panel, so peak extra memory
    stays at one small float32 panel regardless of catalogue size and
    every GEMM keeps the fixed partition-invariant shape.

    Parameters
    ----------
    chunk_items:
        Item rows dequantized per matmul panel (the float32 panel
        width); defaults to :data:`PANEL_WIDTH`.
    """

    kind = "quantized"

    def __init__(self, snapshot: EmbeddingSnapshot, chunk_users: int = 256,
                 chunk_items: int = PANEL_WIDTH):
        super().__init__(snapshot, chunk_users)
        if chunk_items <= 0:
            raise ValueError(f"chunk_items must be positive, got {chunk_items}")
        self.chunk_items = chunk_items
        items = scoring_ready_items(snapshot.items, snapshot.scoring)
        self._quantized, self._scales = quantize_rows(items)
        if snapshot.scoring == "euclidean":
            deq = self._quantized.astype(np.float32) * self._scales[:, None]
            self._item_sq = (deq.astype(np.float64) ** 2).sum(axis=1)
        else:
            self._item_sq = None

    def refreshed(self, snapshot: EmbeddingSnapshot) -> "QuantizedTopKIndex":
        return type(self)(snapshot, chunk_users=self.chunk_users,
                          chunk_items=self.chunk_items)

    @property
    def table_bytes(self) -> int:
        """Bytes held by the quantized catalogue (table + scales)."""
        return self._quantized.nbytes + self._scales.nbytes

    def _score_chunk(self, users: np.ndarray) -> np.ndarray:
        vectors = self._user_vectors(users).astype(np.float32)
        scores = quantized_panel_scores(vectors, self._quantized,
                                        self._scales, self.chunk_items)
        if self.snapshot.scoring == "euclidean":
            u_sq = (vectors.astype(np.float64) ** 2).sum(axis=1,
                                                         keepdims=True)
            scores = -(u_sq + self._item_sq - 2.0 * scores)
        return scores


_INDEX_KINDS = {"exact": ExactTopKIndex, "quantized": QuantizedTopKIndex}


def build_index(snapshot: EmbeddingSnapshot, kind: str = "exact",
                **kwargs) -> TopKIndex:
    """Construct an index by kind name (``"exact"`` or ``"quantized"``)."""
    if kind not in _INDEX_KINDS:
        raise KeyError(f"unknown index kind {kind!r}; "
                       f"available: {sorted(_INDEX_KINDS)}")
    return _INDEX_KINDS[kind](snapshot, **kwargs)
