"""Top-K retrieval indexes over a frozen embedding snapshot.

Two interchangeable paths answer ``topk(user_ids, k)``:

* :class:`ExactTopKIndex` — chunked dense matmul over the float64
  tables.  It reproduces the offline
  :class:`~repro.eval.evaluator.Evaluator` scoring **bit for bit**: the
  same scoring formulas as
  :meth:`~repro.models.base.Recommender.predict_scores`, the same
  ``-inf`` seen-item scatter
  (:func:`repro.eval.masking.mask_seen_items`), and the same
  ``argpartition`` ranking (:func:`repro.eval.metrics.rank_items`), so
  online recommendations are exactly the lists the paper's metrics were
  computed on.
* :class:`QuantizedTopKIndex` — the item table stored symmetric-int8
  per row (8x smaller than float64) and dequantized chunk-by-chunk into
  a float32 matmul.  Approximate (last-ulp rank flips are possible) but
  at paper scales it keeps >0.95 top-10 overlap with the exact path;
  the serve benchmark (``repro perf-serve``) reports the measured
  overlap alongside throughput.

Both indexes share masking and ranking plumbing via :class:`TopKIndex`,
so ``filter_seen`` semantics cannot drift between paths.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.eval.masking import mask_seen_items
from repro.eval.metrics import rank_items
from repro.serve.snapshot import EmbeddingSnapshot

__all__ = ["TopKResult", "TopKIndex", "ExactTopKIndex", "QuantizedTopKIndex",
           "build_index"]


@dataclasses.dataclass(frozen=True)
class TopKResult:
    """Ranked recommendations for one batch of users.

    ``items[r]`` are the top-K item ids for ``user_ids[r]``, best first;
    ``scores[r]`` are the corresponding model scores (the exact index
    returns the same float64 values the evaluator ranks on).
    """

    user_ids: np.ndarray
    items: np.ndarray
    scores: np.ndarray
    k: int
    filtered_seen: bool

    def __len__(self) -> int:
        return len(self.user_ids)


class TopKIndex:
    """Shared chunking / masking / ranking skeleton of both index kinds.

    Parameters
    ----------
    snapshot:
        Loaded :class:`~repro.serve.snapshot.EmbeddingSnapshot`.
    chunk_users:
        Users scored per dense block; bounds the ``(chunk, n_items)``
        score buffer exactly like the evaluator's ``batch_users``.
    """

    #: subclass tag recorded in benchmarks and service cache keys
    kind = "abstract"

    def __init__(self, snapshot: EmbeddingSnapshot, chunk_users: int = 256):
        if chunk_users <= 0:
            raise ValueError(f"chunk_users must be positive, got {chunk_users}")
        self.snapshot = snapshot
        self.chunk_users = chunk_users

    # ------------------------------------------------------------------
    def topk(self, user_ids, k: int = 10,
             filter_seen: bool = True) -> TopKResult:
        """Rank the catalogue for a batch of users and keep the top ``k``.

        Parameters
        ----------
        user_ids:
            Integer array-like of user ids (any order, duplicates fine).
        k:
            List length; clipped to the catalogue size.
        filter_seen:
            Remove each user's training interactions from the candidate
            set (the evaluator's protocol).  Pass ``False`` to rank the
            full catalogue (e.g. for similar-item carousels).
        """
        users = np.atleast_1d(np.asarray(user_ids, dtype=np.int64))
        if users.ndim != 1:
            raise ValueError(f"user_ids must be 1-D, got shape {users.shape}")
        n_users = self.snapshot.manifest.num_users
        if len(users) and (users.min() < 0 or users.max() >= n_users):
            raise ValueError(f"user ids must lie in [0, {n_users})")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        k = min(k, self.snapshot.manifest.num_items)
        out_items = np.empty((len(users), k), dtype=np.int64)
        out_scores = np.empty((len(users), k), dtype=np.float64)
        for lo in range(0, len(users), self.chunk_users):
            chunk = users[lo:lo + self.chunk_users]
            scores = self._score_chunk(chunk)
            if filter_seen:
                mask_seen_items(scores, self.snapshot.seen_indptr,
                                self.snapshot.seen_items, chunk)
            top = rank_items(scores, k)
            out_items[lo:lo + len(chunk)] = top
            out_scores[lo:lo + len(chunk)] = np.take_along_axis(
                scores, top, axis=-1)
        return TopKResult(user_ids=users, items=out_items, scores=out_scores,
                          k=k, filtered_seen=filter_seen)

    # ------------------------------------------------------------------
    def _score_chunk(self, users: np.ndarray) -> np.ndarray:
        """Dense ``(len(users), n_items)`` float64 score block."""
        raise NotImplementedError

    def _user_vectors(self, users: np.ndarray) -> np.ndarray:
        """Gather (and for cosine, normalize) the query-side rows.

        Mirrors ``predict_scores``: rows are selected *before* the
        normalization so the arithmetic matches element for element.
        """
        vectors = np.asarray(self.snapshot.users[users], dtype=np.float64)
        if self.snapshot.scoring == "cosine":
            vectors = vectors / (np.linalg.norm(vectors, axis=1,
                                                keepdims=True) + 1e-12)
        return vectors

    def _scoring_ready_items(self) -> np.ndarray:
        """Catalogue-side table with the scoring prep baked in.

        The float64 cast and the cosine ``+ 1e-12`` row-normalization
        are load-bearing for evaluator bit-exactness — both index kinds
        must start from exactly this table.
        """
        items = np.asarray(self.snapshot.items, dtype=np.float64)
        if self.snapshot.scoring == "cosine":
            items = items / (np.linalg.norm(items, axis=1, keepdims=True)
                             + 1e-12)
        return items


class ExactTopKIndex(TopKIndex):
    """Exact retrieval: float64 chunked matmul, evaluator-identical."""

    kind = "exact"

    def __init__(self, snapshot: EmbeddingSnapshot, chunk_users: int = 256):
        super().__init__(snapshot, chunk_users)
        items = self._scoring_ready_items()
        self._items = items
        self._item_sq = ((items ** 2).sum(axis=1)
                         if snapshot.scoring == "euclidean" else None)

    def _score_chunk(self, users: np.ndarray) -> np.ndarray:
        vectors = self._user_vectors(users)
        if self.snapshot.scoring == "euclidean":
            u_sq = (vectors ** 2).sum(axis=1, keepdims=True)
            return -(u_sq + self._item_sq - 2.0 * vectors @ self._items.T)
        return vectors @ self._items.T


class QuantizedTopKIndex(TopKIndex):
    """Approximate retrieval over a symmetric-int8 item table.

    Each (scoring-ready) item row ``i`` is stored as
    ``int8 q[i] ≈ items[i] / scale[i]`` with
    ``scale[i] = max|items[i]| / 127``, an 8x compression of the
    catalogue side.  Scoring dequantizes ``chunk_items`` rows at a time
    into a float32 matmul, so peak extra memory stays at one small
    float32 panel regardless of catalogue size.

    Parameters
    ----------
    chunk_items:
        Item rows dequantized per matmul panel.
    """

    kind = "quantized"

    def __init__(self, snapshot: EmbeddingSnapshot, chunk_users: int = 256,
                 chunk_items: int = 4096):
        super().__init__(snapshot, chunk_users)
        if chunk_items <= 0:
            raise ValueError(f"chunk_items must be positive, got {chunk_items}")
        self.chunk_items = chunk_items
        items = self._scoring_ready_items()
        peak = np.abs(items).max(axis=1)
        scales = np.where(peak > 0, peak / 127.0, 1.0)
        self._quantized = np.clip(
            np.rint(items / scales[:, None]), -127, 127).astype(np.int8)
        self._scales = scales.astype(np.float32)
        if snapshot.scoring == "euclidean":
            deq = self._quantized.astype(np.float32) * self._scales[:, None]
            self._item_sq = (deq.astype(np.float64) ** 2).sum(axis=1)
        else:
            self._item_sq = None

    @property
    def table_bytes(self) -> int:
        """Bytes held by the quantized catalogue (table + scales)."""
        return self._quantized.nbytes + self._scales.nbytes

    def _score_chunk(self, users: np.ndarray) -> np.ndarray:
        vectors = self._user_vectors(users).astype(np.float32)
        n_items = self.snapshot.manifest.num_items
        scores = np.empty((len(users), n_items), dtype=np.float64)
        for lo in range(0, n_items, self.chunk_items):
            hi = min(lo + self.chunk_items, n_items)
            panel = (self._quantized[lo:hi].astype(np.float32)
                     * self._scales[lo:hi, None])
            scores[:, lo:hi] = vectors @ panel.T
        if self.snapshot.scoring == "euclidean":
            u_sq = (vectors.astype(np.float64) ** 2).sum(axis=1,
                                                         keepdims=True)
            scores = -(u_sq + self._item_sq - 2.0 * scores)
        return scores


_INDEX_KINDS = {"exact": ExactTopKIndex, "quantized": QuantizedTopKIndex}


def build_index(snapshot: EmbeddingSnapshot, kind: str = "exact",
                **kwargs) -> TopKIndex:
    """Construct an index by kind name (``"exact"`` or ``"quantized"``)."""
    if kind not in _INDEX_KINDS:
        raise KeyError(f"unknown index kind {kind!r}; "
                       f"available: {sorted(_INDEX_KINDS)}")
    return _INDEX_KINDS[kind](snapshot, **kwargs)
