"""Deterministic, seeded fault injection for the serving stack.

Production traffic means failures: a shard whose BLAS call stalls, a
worker that dies mid-batch, a snapshot directory torn by a crashed
exporter.  This module is the **chaos harness** that lets the repo test
and benchmark those failure domains *reproducibly*:

* :class:`FaultPlan` — the schedule.  Every injection decision is a
  **pure function of** ``(seed, point, key, spec index)``: the plan
  hashes the triple into uniform draws and compares them against the
  configured rates, so two runs with the same seed produce exactly the
  same fault schedule regardless of thread interleaving — there is no
  shared RNG stream whose consumption order could differ between runs.
  Fired decisions are recorded in a thread-safe event log;
  :meth:`FaultPlan.events` returns a canonically sorted tuple, so
  "same seed ⇒ identical schedule" is a one-line assertion.
* :class:`FaultSpec` — one fault at one injection point: a latency
  spike (``kind="latency"``, sleeps ``latency_ms``), an exception
  (``kind="error"``, raises :class:`InjectedFault`), or a corrupted
  read (``kind="corrupt"``, surfaced to the caller via
  :meth:`FaultPlan.should_corrupt` because only the caller knows what
  "corrupt" means for its data).
* Wrappers — :class:`FaultyShardIndex` (per-shard ``partial_topk``,
  the router's unit of fan-out), :class:`FaultyIndex` (whole-index
  ``topk``, the unsharded service's sweep) and
  :class:`FaultyService` (request-level ``recommend``).  Each numbers
  its invocations under a lock so a synchronous request stream keys the
  plan identically run over run.
* :func:`corrupt_array_file` — deterministic bit damage for snapshot /
  delta IO tests: flips bytes in an ``.npy`` payload (header left
  intact) so ``load_snapshot(verify=True)`` /
  ``load_delta(verify=True)`` must fail loudly.
* :class:`ManualClock` — a hand-advanced monotonic clock accepted by
  :class:`~repro.serve.resilience.CircuitBreaker`, so state-transition
  tests never sleep.

The resilience machinery this harness exercises — deadlines, retries,
hedging, circuit breakers, degraded results — lives in
:mod:`repro.serve.resilience` and :mod:`repro.serve.router`; the full
contract is documented in ``docs/robustness.md`` and benchmarked by
``repro bench faults`` (``BENCH_faults.json``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
import threading
import time

import numpy as np

__all__ = ["InjectedFault", "FaultSpec", "FaultEvent", "FaultPlan",
           "FaultyShardIndex", "FaultyIndex", "FaultyService",
           "corrupt_array_file", "ManualClock"]

#: fault kinds a :class:`FaultSpec` may declare
FAULT_KINDS = ("latency", "error", "corrupt")


class InjectedFault(RuntimeError):
    """Raised by an ``error`` fault — the stand-in for a crashing
    dependency.  Deliberately a plain ``RuntimeError`` subclass so the
    serving stack's generic error handling (not fault-aware code) has
    to absorb it."""


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One fault family at one injection point.

    Parameters
    ----------
    kind:
        ``"latency"`` (sleep ``latency_ms`` before the call proceeds),
        ``"error"`` (raise :class:`InjectedFault` instead of calling
        through), or ``"corrupt"`` (flag the read as corrupted — the
        caller decides what that means for its data).
    rate:
        Probability in ``[0, 1]`` that the fault fires for a given
        ``(point, key)``.
    latency_ms:
        Injected sleep for ``latency`` faults (ignored otherwise).
    """

    kind: str
    rate: float
    latency_ms: float = 50.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"available: {FAULT_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must lie in [0, 1], got {self.rate}")
        if self.latency_ms < 0:
            raise ValueError(f"latency_ms must be >= 0, "
                             f"got {self.latency_ms}")


@dataclasses.dataclass(frozen=True, order=True)
class FaultEvent:
    """One fired fault decision (orderable for canonical comparison)."""

    point: str
    key: int
    kind: str
    magnitude_ms: float


def _draw(seed: int, point: str, key: int, index: int) -> float:
    """Uniform float in ``[0, 1)`` from a stable hash of the identifiers.

    ``sha256`` rather than Python's randomized ``hash`` so the draw is
    stable across processes and sessions — the property the
    bit-for-bit replay contract rests on.
    """
    payload = f"{seed}|{point}|{key}|{index}".encode()
    digest = hashlib.sha256(payload).digest()
    (value,) = struct.unpack("<Q", digest[:8])
    return value / float(1 << 64)


class FaultPlan:
    """A seeded, replayable fault schedule over named injection points.

    Parameters
    ----------
    seed:
        Integer seed; two plans with equal seed and specs make
        identical decisions for every ``(point, key)``.
    specs:
        ``{point: FaultSpec | [FaultSpec, ...]}``.  A point name may be
        a concrete injection site (``"shard:1"``) or a prefix-matched
        family: a spec registered under ``"shard"`` also fires at
        ``"shard:0"``, ``"shard:1"``, … (longest exact match first).

    The decision for each ``(point, key, spec)`` is a pure hash —
    **stateless** — so concurrent callers cannot perturb each other's
    schedules; the event log only *records* what fired.
    """

    def __init__(self, seed: int = 0,
                 specs: dict[str, FaultSpec | list[FaultSpec]] | None = None):
        self.seed = int(seed)
        self.specs: dict[str, tuple[FaultSpec, ...]] = {}
        for point, spec in (specs or {}).items():
            if isinstance(spec, FaultSpec):
                spec = [spec]
            self.specs[point] = tuple(spec)
        self._events: list[FaultEvent] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _specs_for(self, point: str) -> tuple[FaultSpec, ...]:
        """Specs registered for ``point`` (exact, else ``prefix:``)."""
        if point in self.specs:
            return self.specs[point]
        head = point.split(":", 1)[0]
        return self.specs.get(head, ())

    def decide(self, point: str, key: int) -> list[FaultEvent]:
        """The faults that fire at ``(point, key)`` — pure, no recording."""
        fired = []
        for index, spec in enumerate(self._specs_for(point)):
            if _draw(self.seed, point, int(key), index) < spec.rate:
                magnitude = spec.latency_ms if spec.kind == "latency" else 0.0
                fired.append(FaultEvent(point=point, key=int(key),
                                        kind=spec.kind,
                                        magnitude_ms=magnitude))
        return fired

    def fire(self, point: str, key: int, *,
             sleep=time.sleep) -> list[FaultEvent]:
        """Apply the schedule at ``(point, key)``: sleep, then maybe raise.

        Latency faults sleep first (a slow *and* failing dependency is
        slow before it fails), then the first ``error`` fault raises
        :class:`InjectedFault`.  ``corrupt`` decisions are recorded but
        not applied — use :meth:`should_corrupt` where the caller can
        act on them.  Returns the fired events.
        """
        fired = self.decide(point, key)
        if fired:
            with self._lock:
                self._events.extend(fired)
        for event in fired:
            if event.kind == "latency" and event.magnitude_ms > 0:
                sleep(event.magnitude_ms / 1e3)
        for event in fired:
            if event.kind == "error":
                raise InjectedFault(
                    f"injected fault at {point!r} (key={key}, "
                    f"seed={self.seed})")
        return fired

    def should_corrupt(self, point: str, key: int) -> bool:
        """True when a ``corrupt`` fault fires at ``(point, key)``
        (recorded in the event log like any other decision)."""
        fired = [e for e in self.decide(point, key) if e.kind == "corrupt"]
        if fired:
            with self._lock:
                self._events.extend(fired)
        return bool(fired)

    # ------------------------------------------------------------------
    def events(self) -> tuple[FaultEvent, ...]:
        """Canonically sorted tuple of every fired event.

        Sorted — not insertion-ordered — because concurrent callers may
        append in any interleaving; the *set* of fired events is what
        the pure-hash schedule makes deterministic.
        """
        with self._lock:
            return tuple(sorted(self._events))

    def reset_events(self) -> None:
        """Clear the event log (the schedule itself is stateless)."""
        with self._lock:
            self._events.clear()

    def __repr__(self) -> str:
        points = {point: [s.kind for s in specs]
                  for point, specs in self.specs.items()}
        return f"FaultPlan(seed={self.seed}, points={points})"


class _CountingWrapper:
    """Shared plumbing: per-wrapper invocation counter + delegation.

    Each wrapped call gets the next counter value as its plan key, taken
    under a lock, so a *serialized* call stream (the deterministic soak)
    keys the plan identically run over run.  Unknown attributes delegate
    to the wrapped object, so wrappers stay drop-in for protocol users.
    """

    def __init__(self, wrapped, plan: FaultPlan, point: str):
        self._wrapped = wrapped
        self._plan = plan
        self._point = point
        self._calls = 0
        self._count_lock = threading.Lock()

    @property
    def calls(self) -> int:
        """Invocations observed so far (post-breaker, pre-fault)."""
        return self._calls

    def _next_key(self) -> int:
        with self._count_lock:
            key = self._calls
            self._calls += 1
        return key

    def __getattr__(self, name):
        return getattr(self._wrapped, name)


class FaultyShardIndex(_CountingWrapper):
    """Wrap one per-shard index; faults fire on every ``partial_topk``.

    Drop-in for :class:`~repro.serve.shard.ItemShardIndex` — install
    over ``router.shard_indexes[i]`` to make shard ``i`` flaky.  The
    plan key is this wrapper's own invocation counter, so retries and
    hedge attempts draw **fresh** decisions (attempt ``n`` is key
    ``n``), which is exactly how a real straggler retry behaves.
    """

    def partial_topk(self, *args, **kwargs):
        """Roll the plan for this invocation, then delegate."""
        self._plan.fire(self._point, self._next_key())
        return self._wrapped.partial_topk(*args, **kwargs)


class FaultyIndex(_CountingWrapper):
    """Wrap a whole :class:`~repro.serve.index.TopKIndex`; faults fire
    on every ``topk`` sweep (the unsharded service's unit of work)."""

    def topk(self, *args, **kwargs):
        """Roll the plan for this invocation, then delegate."""
        self._plan.fire(self._point, self._next_key())
        return self._wrapped.topk(*args, **kwargs)


class FaultyService(_CountingWrapper):
    """Wrap a :class:`~repro.serve.service.RecommendationService`;
    faults fire on every ``recommend`` call (one key per call)."""

    def recommend(self, *args, **kwargs):
        """Roll the plan for this invocation, then delegate."""
        self._plan.fire(self._point, self._next_key())
        return self._wrapped.recommend(*args, **kwargs)


def corrupt_array_file(path, *, seed: int = 0, flips: int = 8) -> None:
    """Deterministically damage an ``.npy`` file's payload bytes.

    Flips ``flips`` seeded-random payload bytes (the 128-byte header is
    left intact so the file still *parses* — the damage is exactly the
    silent kind only a content-hash ``verify`` can catch).  Used by the
    corrupt-read chaos scenarios and the quarantine tests.
    """
    path_bytes = bytearray(path.read_bytes() if hasattr(path, "read_bytes")
                           else open(path, "rb").read())
    header = 128
    if len(path_bytes) <= header:
        raise ValueError(f"{path} too small to corrupt past its header")
    rng = np.random.default_rng(seed)
    positions = rng.integers(header, len(path_bytes), size=flips)
    for pos in positions:
        path_bytes[int(pos)] ^= 0xFF
    with open(path, "wb") as fh:
        fh.write(bytes(path_bytes))


class ManualClock:
    """A hand-advanced monotonic clock for deterministic time tests.

    Callable like ``time.monotonic`` — pass as the ``clock`` of a
    :class:`~repro.serve.resilience.CircuitBreaker` and drive state
    transitions with :meth:`advance` instead of sleeping.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward (never backward)."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}")
        with self._lock:
            self._now += seconds
