"""Per-shard wrappers of a horizontally partitioned snapshot.

A sharded snapshot directory (written by
:func:`repro.serve.snapshot.export_sharded_snapshot`) splits the serving
state along two independent axes:

* :class:`UserShard` — the embedding rows and seen-item CSR of a subset
  of users.  Lookup-only: user sharding never changes any score bits,
  it just bounds per-process user-table and seen-set memory.
* :class:`ItemShard` — the embedding rows of a subset of the catalogue,
  plus per-shard scorers (:class:`ExactShardIndex` /
  :class:`QuantizedShardIndex`) that answer *partial* top-K queries over
  the shard's items, in **global** item ids.

:class:`ShardedSnapshot` loads the whole directory and owns the
global→(shard, local) routing tables.  The scatter-gather that merges
partial answers back into the unsharded ranking lives in
:mod:`repro.serve.router`.

Every scorer here reuses the fixed-shape panel kernels and canonical
ranking from :mod:`repro.serve.index`
(:func:`~repro.serve.index.panel_scores`,
:func:`~repro.eval.metrics.rank_items`) and the shared ``-inf`` scatter
from :mod:`repro.eval.masking`, so a shard cannot drift from the
single-process path in scoring, masking or tie order.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.eval.masking import mask_seen_items, seen_items_csr
from repro.eval.metrics import rank_items
from repro.serve.index import (PANEL_WIDTH, build_panels, panel_scores,
                               quantize_rows, quantized_panel_scores,
                               scoring_ready_items)
from repro.serve.snapshot import (SHARD_SCHEMA, SHARDED_SCHEMA,
                                  ShardManifest, ShardedManifest,
                                  _SHARDS_MANIFEST)

__all__ = ["UserShard", "ItemShard", "ItemShardIndex", "ExactShardIndex",
           "QuantizedShardIndex", "ShardedSnapshot",
           "load_sharded_snapshot", "build_shard_index"]

_MANIFEST = "manifest.json"


def _load_shard_manifest(shard_dir: pathlib.Path, kind: str) -> ShardManifest:
    """Read and schema-check one shard directory's manifest."""
    path = shard_dir / _MANIFEST
    if not path.is_file():
        raise FileNotFoundError(f"no shard manifest at {path}")
    manifest = ShardManifest.from_json(path.read_text())
    if manifest.schema != SHARD_SCHEMA:
        raise ValueError(f"shard schema {manifest.schema!r} is not "
                         f"{SHARD_SCHEMA!r}")
    if manifest.kind != kind:
        raise ValueError(f"expected a {kind} shard at {shard_dir}, "
                         f"found kind {manifest.kind!r}")
    return manifest


class UserShard:
    """One user partition: embedding rows + seen-item CSR, global ids.

    ``ids[p]`` is the global user id stored at local position ``p``
    (ascending); ``seen_items[seen_indptr[p]:seen_indptr[p+1]]`` are the
    **global** item ids of that user's training interactions.
    """

    def __init__(self, manifest: ShardManifest, ids: np.ndarray,
                 embeddings: np.ndarray, seen_indptr: np.ndarray,
                 seen_items: np.ndarray, path: pathlib.Path | None = None):
        if len(ids) != manifest.count:
            raise ValueError(f"user shard holds {len(ids)} ids but manifest "
                             f"says {manifest.count}")
        if embeddings.shape != (manifest.count, manifest.dim):
            raise ValueError(f"user shard table shape {embeddings.shape} "
                             f"does not match manifest "
                             f"({manifest.count}, {manifest.dim})")
        if len(seen_indptr) != manifest.count + 1:
            raise ValueError("user shard seen_indptr length mismatch")
        if seen_indptr[0] != 0 or seen_indptr[-1] != len(seen_items):
            raise ValueError("user shard seen_indptr does not span "
                             "seen_items (truncated shard?)")
        if not np.all(np.diff(seen_indptr) >= 0):
            raise ValueError("user shard seen_indptr is not monotone")
        if len(seen_items) and (seen_items.min() < 0
                                or seen_items.max() >= manifest.num_items):
            raise ValueError("user shard seen_items out of range")
        self.manifest = manifest
        self.ids = np.asarray(ids, dtype=np.int64)
        self.embeddings = embeddings
        self.seen_indptr = seen_indptr
        self.seen_items = seen_items
        self.path = path

    def __len__(self) -> int:
        return int(self.manifest.count)

    def seen(self, position: int) -> np.ndarray:
        """Global seen-item ids of the user at local ``position``."""
        return np.asarray(self.seen_items[self.seen_indptr[position]:
                                          self.seen_indptr[position + 1]])

    @classmethod
    def load(cls, shard_dir, *, mmap: bool = True) -> "UserShard":
        """Open one ``user-shard-NN`` directory."""
        shard_dir = pathlib.Path(shard_dir)
        manifest = _load_shard_manifest(shard_dir, "user")
        mode = "r" if mmap else None
        return cls(manifest,
                   np.load(shard_dir / "user_ids.npy", allow_pickle=False),
                   np.load(shard_dir / "user_embeddings.npy", mmap_mode=mode,
                           allow_pickle=False),
                   np.load(shard_dir / "seen_indptr.npy", allow_pickle=False),
                   np.load(shard_dir / "seen_items.npy", allow_pickle=False),
                   path=shard_dir)


class ItemShard:
    """One item partition: embedding rows for a slice of the catalogue.

    ``ids`` are the global item ids at each local row, ascending — the
    property that lets a shard-local canonical ranking (ties broken by
    *local* index) coincide with the global-id tie order after mapping
    back through ``ids``.
    """

    def __init__(self, manifest: ShardManifest, ids: np.ndarray,
                 embeddings: np.ndarray, path: pathlib.Path | None = None):
        if len(ids) != manifest.count:
            raise ValueError(f"item shard holds {len(ids)} ids but manifest "
                             f"says {manifest.count}")
        if embeddings.shape != (manifest.count, manifest.dim):
            raise ValueError(f"item shard table shape {embeddings.shape} "
                             f"does not match manifest "
                             f"({manifest.count}, {manifest.dim})")
        if len(ids) and np.any(np.diff(ids) <= 0):
            raise ValueError("item shard ids must be strictly ascending")
        if len(ids) and (ids[0] < 0 or ids[-1] >= manifest.num_items):
            raise ValueError("item shard ids out of range")
        self.manifest = manifest
        self.ids = np.asarray(ids, dtype=np.int64)
        self.embeddings = embeddings
        self.path = path

    def __len__(self) -> int:
        return int(self.manifest.count)

    def localize(self, global_ids: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Map global item ids onto this shard's local positions.

        Returns ``(member, local)``: a boolean mask of which inputs this
        shard owns, and their local row positions (same length as the
        ``True`` count, input order preserved).
        """
        global_ids = np.asarray(global_ids, dtype=np.int64)
        pos = np.searchsorted(self.ids, global_ids)
        pos_clipped = np.minimum(pos, len(self.ids) - 1)
        member = self.ids[pos_clipped] == global_ids
        return member, pos_clipped[member]

    @classmethod
    def load(cls, shard_dir, *, mmap: bool = True) -> "ItemShard":
        """Open one ``item-shard-NN`` directory."""
        shard_dir = pathlib.Path(shard_dir)
        manifest = _load_shard_manifest(shard_dir, "item")
        mode = "r" if mmap else None
        return cls(manifest,
                   np.load(shard_dir / "item_ids.npy", allow_pickle=False),
                   np.load(shard_dir / "item_embeddings.npy", mmap_mode=mode,
                           allow_pickle=False),
                   path=shard_dir)


class ItemShardIndex:
    """Partial top-K scorer over one item shard, in global item ids.

    Subclasses score a prepared user-vector block against the shard's
    (scoring-ready) local table with the same fixed-shape panel kernels
    as the unsharded indexes, mask seen items through
    :func:`repro.eval.masking.mask_seen_items`, and rank with the
    canonical :func:`repro.eval.metrics.rank_items` — so the partial
    list is exactly the restriction of the global ranking to this
    shard's items.
    """

    #: subclass tag mirrored from the unsharded index kinds
    kind = "abstract"

    def __init__(self, shard: ItemShard, scoring: str):
        self.shard = shard
        self.scoring = scoring

    # ------------------------------------------------------------------
    def partial_topk(self, vectors: np.ndarray, k: int,
                     seen_indptr: np.ndarray | None = None,
                     seen_global: np.ndarray | None = None,
                     cand_indptr: np.ndarray | None = None,
                     cand_global: np.ndarray | None = None
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Top ``min(k, len(shard))`` local candidates per user row.

        Parameters
        ----------
        vectors:
            ``(m, dim)`` scoring-ready user block (float64; quantized
            subclass casts internally), produced by
            :func:`repro.serve.index.scoring_ready_users`.
        k:
            Global list length; clipped to the shard's item count.
        seen_indptr, seen_global:
            Optional request-batch CSR of **global** seen-item ids, one
            row per user in ``vectors``; the shard masks the subset of
            ids it owns.
        cand_indptr, cand_global:
            Optional request-batch CSR of **global** candidate ids (an
            ANN prefilter): when given, each user row may only surface
            items in its candidate set — everything else in the shard
            is masked out before ranking.  A candidate set covering the
            whole catalogue reduces to the unrestricted path.

        Returns ``(global_item_ids, scores)`` of shape ``(m, k_local)``,
        each row sorted by the canonical ``(score desc, global id asc)``
        order.
        """
        scores = self._score_block(vectors)
        if cand_indptr is not None:
            self._restrict_candidates(scores, cand_indptr, cand_global)
        if seen_indptr is not None and len(seen_global):
            local_indptr, local_idx = self._localize_seen(seen_indptr,
                                                          seen_global)
            mask_seen_items(scores, local_indptr, local_idx,
                            np.arange(len(vectors), dtype=np.int64))
        k_local = min(k, len(self.shard))
        top = rank_items(scores, k_local)
        top_scores = np.take_along_axis(scores, top, axis=-1)
        return self.shard.ids[top], top_scores

    def _restrict_candidates(self, scores: np.ndarray,
                             cand_indptr: np.ndarray,
                             cand_global: np.ndarray) -> None:
        """Mask every non-candidate shard item to ``-inf``, in place.

        The shard owns an arbitrary slice of the catalogue, so each
        user's global candidate ids are first localized
        (:meth:`ItemShard.localize`); positions the shard does not own
        are dropped — another shard surfaces them.
        """
        member, local = self.shard.localize(cand_global)
        counts = np.diff(cand_indptr)
        rows = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
        blocked = np.ones_like(scores, dtype=bool)
        blocked[rows[member], local] = False
        scores[blocked] = -np.inf

    def _localize_seen(self, seen_indptr: np.ndarray,
                       seen_global: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Restrict a global seen-item CSR to this shard's local ids."""
        member, local = self.shard.localize(seen_global)
        counts = np.diff(seen_indptr)
        rows = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
        kept = np.bincount(rows[member], minlength=len(counts))
        indptr = np.concatenate([np.zeros(1, dtype=np.int64),
                                 np.cumsum(kept)])
        return indptr, local

    def _score_block(self, vectors: np.ndarray) -> np.ndarray:
        """Dense ``(m, len(shard))`` float64 score block."""
        raise NotImplementedError

    @property
    def table_bytes(self) -> int:
        """Bytes held by this shard's scoring tables."""
        raise NotImplementedError


class ExactShardIndex(ItemShardIndex):
    """Exact per-shard scorer: fixed-panel float64 matmul."""

    kind = "exact"

    def __init__(self, shard: ItemShard, scoring: str,
                 panel_width: int = PANEL_WIDTH):
        super().__init__(shard, scoring)
        items = scoring_ready_items(shard.embeddings, scoring)
        self._panels = build_panels(items, panel_width)
        self._item_sq = ((items ** 2).sum(axis=1)
                         if scoring == "euclidean" else None)

    @property
    def table_bytes(self) -> int:
        """Bytes held by the panelized float64 shard table."""
        return self._panels.nbytes

    def _score_block(self, vectors: np.ndarray) -> np.ndarray:
        scores = panel_scores(vectors, self._panels, len(self.shard))
        if self.scoring == "euclidean":
            u_sq = (vectors ** 2).sum(axis=1, keepdims=True)
            return -(u_sq + self._item_sq - 2.0 * scores)
        return scores


class QuantizedShardIndex(ItemShardIndex):
    """Int8 per-shard scorer, bitwise equal to the unsharded quantized path.

    Quantization is per row, so a shard's int8 bytes and scales are
    identical to the same rows inside an unsharded
    :class:`~repro.serve.index.QuantizedTopKIndex`; with the shared
    fixed-width float32 panels the partial scores are too.
    """

    kind = "quantized"

    def __init__(self, shard: ItemShard, scoring: str,
                 chunk_items: int = PANEL_WIDTH):
        super().__init__(shard, scoring)
        if chunk_items <= 0:
            raise ValueError(f"chunk_items must be positive, got {chunk_items}")
        self.chunk_items = chunk_items
        items = scoring_ready_items(shard.embeddings, scoring)
        self._quantized, self._scales = quantize_rows(items)
        if scoring == "euclidean":
            deq = self._quantized.astype(np.float32) * self._scales[:, None]
            self._item_sq = (deq.astype(np.float64) ** 2).sum(axis=1)
        else:
            self._item_sq = None

    @property
    def table_bytes(self) -> int:
        """Bytes held by the quantized shard table (int8 + scales)."""
        return self._quantized.nbytes + self._scales.nbytes

    def _score_block(self, vectors: np.ndarray) -> np.ndarray:
        vectors32 = vectors.astype(np.float32)
        scores = quantized_panel_scores(vectors32, self._quantized,
                                        self._scales, self.chunk_items)
        if self.scoring == "euclidean":
            u_sq = (vectors32.astype(np.float64) ** 2).sum(axis=1,
                                                           keepdims=True)
            scores = -(u_sq + self._item_sq - 2.0 * scores)
        return scores


_SHARD_INDEX_KINDS = {"exact": ExactShardIndex,
                      "quantized": QuantizedShardIndex}


def build_shard_index(shard: ItemShard, scoring: str, kind: str = "exact",
                      **kwargs) -> ItemShardIndex:
    """Construct a per-shard scorer by kind name (mirrors ``build_index``)."""
    if kind not in _SHARD_INDEX_KINDS:
        raise KeyError(f"unknown shard index kind {kind!r}; "
                       f"available: {sorted(_SHARD_INDEX_KINDS)}")
    return _SHARD_INDEX_KINDS[kind](shard, scoring, **kwargs)


class ShardedSnapshot:
    """A loaded sharded snapshot: manifest, shards, and routing tables.

    Exposes the same identity surface as an unsharded
    :class:`~repro.serve.snapshot.EmbeddingSnapshot` (``version``,
    ``scoring``, user/item counts) so
    :class:`~repro.serve.service.RecommendationService` can key caches
    on it unchanged.
    """

    def __init__(self, manifest: ShardedManifest,
                 user_shards: list[UserShard],
                 item_shards: list[ItemShard],
                 path: pathlib.Path | None = None):
        if len(user_shards) != manifest.num_user_shards:
            raise ValueError(f"expected {manifest.num_user_shards} user "
                             f"shards, loaded {len(user_shards)}")
        if len(item_shards) != manifest.num_item_shards:
            raise ValueError(f"expected {manifest.num_item_shards} item "
                             f"shards, loaded {len(item_shards)}")
        self.manifest = manifest
        self.user_shards = user_shards
        self.item_shards = item_shards
        self.path = path
        self._check_coverage()
        # global user id -> (owning shard, local row) routing tables
        self._user_owner = np.full(manifest.num_users, -1, dtype=np.int32)
        self._user_local = np.full(manifest.num_users, -1, dtype=np.int64)
        for s, shard in enumerate(user_shards):
            self._user_owner[shard.ids] = s
            self._user_local[shard.ids] = np.arange(len(shard),
                                                    dtype=np.int64)

    def _check_coverage(self) -> None:
        """Shard id sets must partition the user and item ranges exactly."""
        m = self.manifest
        for kind, shards, n in (("user", self.user_shards, m.num_users),
                                ("item", self.item_shards, m.num_items)):
            merged = np.sort(np.concatenate([s.ids for s in shards])
                             if shards else np.empty(0, np.int64))
            if (len(merged) != n
                    or not np.array_equal(merged,
                                          np.arange(n, dtype=np.int64))):
                raise ValueError(
                    f"{kind} shards do not partition [0, {n}): union has "
                    f"{len(merged)} ids (missing/duplicate ids?)")

    # ------------------------------------------------------------------
    @property
    def version(self) -> str:
        """Content-hash identity (cache key for downstream services)."""
        return self.manifest.version

    @property
    def scoring(self) -> str:
        """Test-time scoring function: ``inner``/``cosine``/``euclidean``."""
        return self.manifest.scoring

    def route_users(self, users: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Owning shard index and local row for each global user id."""
        users = np.asarray(users, dtype=np.int64)
        return self._user_owner[users], self._user_local[users]

    def gather_user_rows(self, users: np.ndarray) -> np.ndarray:
        """Collect raw embedding rows for global user ids, request order."""
        owner, local = self.route_users(users)
        m = self.manifest
        rows = np.empty((len(users), m.dim), dtype=np.float64)
        for s, shard in enumerate(self.user_shards):
            sel = owner == s
            if sel.any():
                rows[sel] = shard.embeddings[local[sel]]
        return rows

    def gather_seen(self, users: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Request-batch CSR of global seen-item ids, one row per user."""
        owner, local = self.route_users(users)
        return seen_items_csr([self.user_shards[o].seen(p)
                               for o, p in zip(owner.tolist(),
                                               local.tolist())])

    def __repr__(self) -> str:
        m = self.manifest
        return (f"ShardedSnapshot(model={m.model!r}, version={m.version!r}, "
                f"user_shards={m.num_user_shards}, "
                f"item_shards={m.num_item_shards}, "
                f"partition={m.strategy!r} by {m.partition_by!r})")


def load_sharded_snapshot(path, *, mmap: bool = True,
                          verify: bool = False) -> ShardedSnapshot:
    """Open a sharded snapshot directory written by
    :func:`repro.serve.snapshot.export_sharded_snapshot`.

    Parameters
    ----------
    path:
        Directory holding ``shards.json`` plus the shard subdirectories.
    mmap:
        Memory-map each shard's embedding tables read-only (default).
    verify:
        Re-hash every shard's arrays and the top-level manifest; fail
        loudly on any mismatch (detects truncated or edited shards).
    """
    path = pathlib.Path(path)
    manifest_path = path / _SHARDS_MANIFEST
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no sharded snapshot manifest at "
                                f"{manifest_path}")
    manifest = ShardedManifest.from_json(manifest_path.read_text())
    if manifest.schema != SHARDED_SCHEMA:
        raise ValueError(f"sharded snapshot schema {manifest.schema!r} is "
                         f"not {SHARDED_SCHEMA!r}")
    user_shards = [UserShard.load(path / entry["path"], mmap=mmap)
                   for entry in manifest.user_shards]
    item_shards = [ItemShard.load(path / entry["path"], mmap=mmap)
                   for entry in manifest.item_shards]
    snapshot = ShardedSnapshot(manifest, user_shards, item_shards, path=path)
    if verify:
        _verify_sharded(snapshot)
    return snapshot


def _verify_sharded(snapshot: ShardedSnapshot) -> None:
    """Re-hash every shard and the top level; raise on any drift."""
    from repro.serve.snapshot import _content_version, _sharded_version
    m = snapshot.manifest
    child_versions = []
    for shard in snapshot.user_shards:
        sm = shard.manifest
        got = _content_version(
            np.asarray(shard.embeddings), shard.ids,
            np.asarray(shard.seen_indptr), np.asarray(shard.seen_items),
            (SHARD_SCHEMA, "user", sm.index, sm.num_shards, sm.strategy))
        if got != sm.version:
            raise ValueError(f"user shard {sm.index} content hash mismatch "
                             f"(expected {sm.version!r}); shard files were "
                             f"modified after export")
        child_versions.append(got)
    for shard in snapshot.item_shards:
        sm = shard.manifest
        got = _content_version(
            np.asarray(shard.embeddings), shard.ids,
            np.empty(0, np.int64), np.empty(0, np.int64),
            (SHARD_SCHEMA, "item", sm.index, sm.num_shards, sm.strategy))
        if got != sm.version:
            raise ValueError(f"item shard {sm.index} content hash mismatch "
                             f"(expected {sm.version!r}); shard files were "
                             f"modified after export")
        child_versions.append(got)
    identity = (SHARDED_SCHEMA, m.model_class, m.dim, m.num_users,
                m.num_items, m.scoring, m.partition_by, m.strategy,
                m.num_user_shards, m.num_item_shards)
    if _sharded_version(identity, child_versions) != m.version:
        raise ValueError(f"shards.json version {m.version!r} does not match "
                         f"the shard contents; manifest was edited")
