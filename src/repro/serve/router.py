"""Scatter-gather routing over a sharded snapshot.

:class:`ShardedTopKIndex` answers ``topk(user_ids, k)`` against a
:class:`~repro.serve.shard.ShardedSnapshot` in three steps per user
chunk:

1. **scatter (users)** — route each requested user to its owning user
   shard, gather the embedding rows (plus seen-item lists) back into
   request order;
2. **scatter (items)** — score the prepared user block against every
   item shard's partial index, each returning its local top-K in global
   item ids, already masked through the shared
   :mod:`repro.eval.masking` scatter;
3. **gather (merge)** — k-way heap merge of the per-shard partial
   lists, keyed on ``(-score, global item id)``.

Because shard scoring uses the same fixed-shape panel kernels as the
unsharded :class:`~repro.serve.index.ExactTopKIndex` and ranking/merge
both follow the canonical ``(score desc, id asc)`` order of
:func:`repro.eval.metrics.rank_items`, the merged ranking — items *and*
scores — is bit-identical to the unsharded index for the exact path
(``tests/test_serve_sharded.py`` pins this for every shard count ×
partition axis; the full contract is in ``docs/sharding.md``).

:class:`ShardedRecommendationService` is the drop-in request front end:
it subclasses :class:`~repro.serve.service.RecommendationService`, so
result caching (keyed on the sharded snapshot's content hash) and
request micro-batching behave identically to single-process serving.
"""

from __future__ import annotations

import heapq
import os
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait

import numpy as np

from repro.obs.stats import RegistryBackedStats
from repro.obs.trace import get_tracer
from repro.serve.faults import _draw
from repro.serve.index import TopKResult, scoring_ready_users
from repro.serve.resilience import (BreakerOpenError, CircuitBreaker,
                                    PartialResultError, ResilienceConfig,
                                    ShardCallError)
from repro.serve.service import RecommendationService
from repro.serve.shard import ShardedSnapshot, build_shard_index

__all__ = ["RouterStats", "ShardedTopKIndex",
           "ShardedRecommendationService"]


class RouterStats(RegistryBackedStats):
    """Cumulative scatter-gather timings (drives the serve benchmark's
    merge-overhead column).

    A registry-backed view (see
    :class:`~repro.obs.stats.RegistryBackedStats`): each field is a
    ``serve.router.<field>`` counter labeled per router instance,
    mutated attribute-style exactly like the dataclass it replaced.
    """

    _PREFIX = "serve.router"
    _COUNTERS = {
        "sweeps": "routed topk() sweeps",
        "users_routed": "users answered through the scatter-gather path",
        "gather_s": "seconds gathering user rows / seen lists / candidates",
        "score_s": "seconds in per-shard partial top-K scoring",
        "merge_s": "seconds in the k-way merge of shard partials",
        "retries": "resilient shard attempts retried after a failure",
        "hedges": "hedged backup attempts launched for straggler shards",
        "hedge_wins": "hedged backups that finished before their primary",
        "shard_failures": "shard calls that exhausted their deadline budget",
        "breaker_open_skips": "shard calls skipped on an open breaker",
        "degraded_chunks": "routed chunks merged with partial shard coverage",
    }

    @property
    def merge_fraction(self) -> float:
        """Share of routed wall-clock spent merging partial lists."""
        total = self.gather_s + self.score_s + self.merge_s
        return self.merge_s / total if total else 0.0

    def reset(self) -> None:
        """Zero every counter (used between benchmark passes)."""
        self._reset_counters()


class ShardedTopKIndex:
    """Scatter-gather top-K index over a sharded snapshot.

    Implements the same ``topk`` protocol as
    :class:`~repro.serve.index.TopKIndex`, so it plugs into
    :class:`~repro.serve.service.RecommendationService` unchanged.

    Parameters
    ----------
    snapshot:
        Loaded :class:`~repro.serve.shard.ShardedSnapshot`.
    kind:
        Per-shard scorer kind: ``"exact"`` or ``"quantized"``.
    chunk_users:
        Users scored per dense block.  Part of the parity contract: the
        unsharded index being compared against must use the same value
        (both default to 256), because the BLAS panel kernel's bit
        pattern is pinned per (chunk, panel) shape.
    ann:
        Optional ANN candidate generator — an
        :class:`~repro.ann.ivf.IVFIndexData` (or an
        :class:`~repro.ann.ivf.IVFFlatIndex`, whose ``data`` is used).
        When set, every chunk first generates per-user candidates
        (over-fetched so ``filter_seen`` cannot starve the top-``k``)
        and each item shard re-scores only the candidates it owns,
        still through its exact fixed-panel kernels.  With
        ``nprobe == nlist`` the candidate set covers the catalogue and
        the routed results are bit-identical to the plain sharded path.
    ann_nprobe:
        Probe count for the generator (default: its own default).
    workers:
        Concurrent item-shard fan-out width.  ``None`` (default) picks
        ``min(num_item_shards, cpu count)``; values ``<= 1`` score the
        shards sequentially.  The per-shard ``partial_topk`` calls
        release the GIL inside BLAS, so a thread pool genuinely
        overlaps shard scoring — and because each shard's scores come
        from the same fixed-shape panel kernels regardless of which
        thread runs them, and the k-way merge consumes the partials in
        shard order, concurrent results are **bit-identical** to the
        sequential router (pinned by ``tests/test_serve_sharded.py``).
    resilience:
        Optional :class:`~repro.serve.resilience.ResilienceConfig`.
        When set, every shard call runs on a helper thread under a
        per-shard **deadline budget** with jittered retry/backoff,
        optional hedged backup attempts for stragglers, and (if
        ``resilience.breaker`` is set) a per-shard circuit breaker.  A
        shard that still fails yields an explicitly **degraded** result
        (``TopKResult.coverage`` < 1, unfillable ranks padded with item
        ``-1`` / score ``-inf``) — or, in ``strict`` mode, a
        :class:`~repro.serve.resilience.PartialResultError`.  ``None``
        (default) keeps the fail-stop fast path: no helper threads, no
        per-call overhead, bit-parity with the unsharded index exactly
        as before.
    **index_kwargs:
        Extra arguments for the per-shard scorers (e.g. ``panel_width``
        for exact, ``chunk_items`` for quantized).
    """

    def __init__(self, snapshot: ShardedSnapshot, kind: str = "exact",
                 chunk_users: int = 256, ann=None,
                 ann_nprobe: int | None = None,
                 workers: int | None = None,
                 resilience: ResilienceConfig | None = None,
                 **index_kwargs):
        if chunk_users <= 0:
            raise ValueError(f"chunk_users must be positive, got {chunk_users}")
        self.snapshot = snapshot
        self.chunk_users = chunk_users
        self._index_kwargs = dict(index_kwargs)
        self.shard_indexes = [
            build_shard_index(shard, snapshot.scoring, kind, **index_kwargs)
            for shard in snapshot.item_shards]
        if workers is None:
            workers = min(len(self.shard_indexes), os.cpu_count() or 1)
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None
        self._attempt_pool: ThreadPoolExecutor | None = None
        self.stats = RouterStats()
        self._kind = kind
        self.resilience = resilience
        self.breakers: list[CircuitBreaker] | None = None
        if resilience is not None and resilience.breaker is not None:
            self.breakers = [
                CircuitBreaker(resilience.breaker, name=f"shard:{s}")
                for s in range(len(self.shard_indexes))]
        self.ann = getattr(ann, "data", ann)
        self.ann_nprobe = ann_nprobe
        if self.ann is not None:
            num_items = snapshot.manifest.num_items
            if self.ann.num_items != num_items:
                raise ValueError(
                    f"ANN index covers {self.ann.num_items} items but the "
                    f"sharded snapshot has {num_items}")

    @property
    def kind(self) -> str:
        """Tag recorded in benchmarks and service cache keys."""
        if self.ann is not None:
            return f"sharded-{self._kind}-ann"
        return f"sharded-{self._kind}"

    @property
    def per_shard_table_bytes(self) -> list[int]:
        """Scoring-table bytes held by each item shard's index."""
        return [index.table_bytes for index in self.shard_indexes]

    # ------------------------------------------------------------------
    def refreshed(self, snapshot: ShardedSnapshot,
                  *, ann=...) -> "ShardedTopKIndex":
        """Rebuild the router over a new sharded snapshot, same knobs.

        A router configured with an ANN candidate generator must be
        handed an updated generator explicitly (``ann=...``): the old
        generator's posting lists reference the retired catalogue, so
        silently reusing it would route requests through stale — and
        for deleted items, dangling — candidate lists.  Pass
        ``ann=None`` to drop candidate generation on refresh.
        """
        if ann is Ellipsis:
            if self.ann is not None:
                raise ValueError(
                    "this router routes through an ANN candidate "
                    "generator; pass an updated generator (or ann=None) "
                    "when refreshing — the old posting lists index the "
                    "retired catalogue")
            ann = None
        return type(self)(snapshot, kind=self._kind,
                          chunk_users=self.chunk_users, ann=ann,
                          ann_nprobe=self.ann_nprobe, workers=self.workers,
                          resilience=self.resilience,
                          **self._index_kwargs)

    # ------------------------------------------------------------------
    def topk(self, user_ids, k: int = 10,
             filter_seen: bool = True) -> TopKResult:
        """Scatter-gather ranked recommendations for a batch of users.

        Same semantics as
        :meth:`repro.serve.index.TopKIndex.topk`; for the exact path the
        result is bit-identical to the unsharded index's answer for the
        same request.
        """
        users = np.atleast_1d(np.asarray(user_ids, dtype=np.int64))
        if users.ndim != 1:
            raise ValueError(f"user_ids must be 1-D, got shape {users.shape}")
        manifest = self.snapshot.manifest
        if len(users) and (users.min() < 0
                           or users.max() >= manifest.num_users):
            raise ValueError(f"user ids must lie in [0, {manifest.num_users})")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        k = min(k, manifest.num_items)
        out_items = np.empty((len(users), k), dtype=np.int64)
        out_scores = np.empty((len(users), k), dtype=np.float64)
        failed_union: set[int] = set()
        for lo in range(0, len(users), self.chunk_users):
            chunk = users[lo:lo + self.chunk_users]
            items, scores, failed = self._route_chunk(chunk, k, filter_seen)
            out_items[lo:lo + len(chunk)] = items
            out_scores[lo:lo + len(chunk)] = scores
            failed_union.update(failed)
        self.stats.sweeps += 1
        self.stats.users_routed += len(users)
        coverage = self._coverage(failed_union)
        return TopKResult(user_ids=users, items=out_items, scores=out_scores,
                          k=k, filtered_seen=filter_seen, coverage=coverage,
                          failed_shards=tuple(sorted(failed_union)))

    def _coverage(self, failed: set[int]) -> float:
        """Catalogue fraction actually scored given failed item shards."""
        if not failed:
            return 1.0
        num_items = self.snapshot.manifest.num_items
        lost = sum(len(self.shard_indexes[s].shard) for s in failed)
        return 1.0 - lost / num_items if num_items else 0.0

    # ------------------------------------------------------------------
    def _route_chunk(self, chunk: np.ndarray, k: int, filter_seen: bool
                     ) -> tuple[np.ndarray, np.ndarray, tuple[int, ...]]:
        """One scatter-gather pass for up to ``chunk_users`` users.

        Returns ``(items, scores, failed_shards)``; the last element is
        empty except on the resilient path when a shard exhausted its
        deadline budget (degraded merge, or a
        :class:`~repro.serve.resilience.PartialResultError` in strict
        mode).
        """
        t0 = time.perf_counter()
        vectors = scoring_ready_users(
            self.snapshot.gather_user_rows(chunk), self.snapshot.scoring)
        if filter_seen:
            seen_indptr, seen_global = self.snapshot.gather_seen(chunk)
        else:
            seen_indptr, seen_global = None, None
        if self.ann is not None:
            seen_counts = (np.diff(seen_indptr) if filter_seen
                           else np.zeros(len(chunk), dtype=np.int64))
            cand_indptr, cand_global = self.ann.candidates_csr(
                vectors, seen_counts, k, self.ann_nprobe, filter_seen,
                self.snapshot.scoring)
        else:
            cand_indptr, cand_global = None, None
        t1 = time.perf_counter()
        failed: tuple[int, ...] = ()
        if self.resilience is not None:
            partials, failed = self._resilient_fanout(
                vectors, k, seen_indptr, seen_global,
                cand_indptr, cand_global)
        elif self.workers > 1 and len(self.shard_indexes) > 1:
            # Concurrent fan-out: the pool maps over shards in order, so
            # the merge below consumes partials exactly as the
            # sequential path would — parity stays bit-identical.
            partials = list(self._fanout_pool().map(
                lambda index: index.partial_topk(
                    vectors, k, seen_indptr, seen_global,
                    cand_indptr, cand_global),
                self.shard_indexes))
        else:
            partials = [index.partial_topk(vectors, k, seen_indptr,
                                           seen_global, cand_indptr,
                                           cand_global)
                        for index in self.shard_indexes]
        t2 = time.perf_counter()
        if failed:
            if self.resilience.strict:
                coverage = self._coverage(set(failed))
                raise PartialResultError(
                    f"{len(failed)} of {len(self.shard_indexes)} item "
                    f"shards failed their deadline budget "
                    f"(coverage {coverage:.2f}); strict mode refuses a "
                    f"partial top-K", coverage=coverage,
                    failed_shards=failed)
            self.stats.degraded_chunks += 1
            survivors = [p for p in partials if p is not None]
            if survivors:
                items, scores = _merge_partials(survivors, k,
                                                allow_underflow=True)
            else:
                items = np.full((len(chunk), k), -1, dtype=np.int64)
                scores = np.full((len(chunk), k), -np.inf, dtype=np.float64)
        else:
            items, scores = _merge_partials(partials, k)
        t3 = time.perf_counter()
        tracer = get_tracer()
        if tracer.enabled:
            # Spans reuse the exact t0..t3 readings that feed the stats
            # counters, so trace and counters cannot drift.
            tracer.record("serve.router.gather", t0, t1, users=len(chunk))
            tracer.record("serve.router.score", t1, t2,
                          shards=len(self.shard_indexes))
            tracer.record("serve.router.merge", t2, t3)
        self.stats.gather_s += t1 - t0
        self.stats.score_s += t2 - t1
        self.stats.merge_s += t3 - t2
        return items, scores, failed

    # ------------------------------------------------------------------
    # Resilient fan-out (deadlines, retries, hedging, breakers)
    # ------------------------------------------------------------------
    def _resilient_fanout(self, vectors, k, seen_indptr, seen_global,
                          cand_indptr, cand_global
                          ) -> tuple[list, tuple[int, ...]]:
        """Fan out with per-shard deadline budgets; never raises for a
        failing shard — its slot comes back ``None`` and its index lands
        in the failed tuple (strict-mode handling is the caller's)."""

        def call(index):
            return index.partial_topk(vectors, k, seen_indptr, seen_global,
                                      cand_indptr, cand_global)

        shard_ids = range(len(self.shard_indexes))
        if self.workers > 1 and len(self.shard_indexes) > 1:
            results = list(self._fanout_pool().map(
                lambda s: self._guard_shard(s, call), shard_ids))
        else:
            results = [self._guard_shard(s, call) for s in shard_ids]
        failed = tuple(s for s, r in enumerate(results) if r is None)
        return results, failed

    def _guard_shard(self, s: int, call):
        """One shard's resilient call; failures become ``None``."""
        try:
            return self._call_shard(s, call)
        except ShardCallError:
            self.stats.shard_failures += 1
            return None

    def _call_shard(self, s: int, call):
        """Retry loop for one shard under its total deadline budget.

        The budget spans *all* attempts (including backoff pauses), so a
        failing shard can never stall the chunk for ``retries`` full
        deadlines.  Each attempt draws fresh fault-plan / jitter
        decisions; the breaker observes only the final verdict — one
        call, one success-or-failure, however many attempts it took.
        """
        cfg = self.resilience
        breaker = self.breakers[s] if self.breakers is not None else None
        if breaker is not None and not breaker.allow():
            self.stats.breaker_open_skips += 1
            raise BreakerOpenError(f"shard {s} circuit breaker is open")
        index = self.shard_indexes[s]
        deadline = time.monotonic() + cfg.deadline_ms / 1e3
        last_error: BaseException | None = None
        for attempt in range(cfg.retries + 1):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            if attempt:
                self.stats.retries += 1
            try:
                result = self._attempt(index, call, remaining)
                if breaker is not None:
                    breaker.record_success()
                return result
            except TimeoutError as exc:
                last_error = exc
                break  # the straggler consumed the whole budget
            except Exception as exc:  # noqa: BLE001 — shard errors retry
                last_error = exc
                if attempt < cfg.retries:
                    # Deterministic jittered backoff: keyed on (shard,
                    # attempt) so shards decorrelate without a shared
                    # RNG stream (replays stay bit-identical).
                    spread = 2.0 * _draw(cfg.seed, f"backoff:{s}",
                                         attempt, 0) - 1.0
                    pause = cfg.backoff_ms / 1e3 \
                        * (1.0 + cfg.backoff_jitter * spread)
                    budget = deadline - time.monotonic()
                    if budget > 0:
                        time.sleep(min(pause, budget))
        if breaker is not None:
            breaker.record_failure()
        raise ShardCallError(
            f"shard {s} failed within its {cfg.deadline_ms:g} ms "
            f"deadline budget") from last_error

    def _attempt(self, index, call, budget_s: float):
        """One (possibly hedged) attempt, bounded by ``budget_s``.

        The call runs on the attempt pool so a straggler can be
        *abandoned* at the deadline (a stuck BLAS call cannot be
        interrupted — the worker finishes in the background and its
        thread returns to the pool).  With hedging configured, a backup
        attempt launches after ``hedge_ms`` and whichever finishes
        first with a result wins.
        """
        cfg = self.resilience
        pool = self._attempts_pool()
        deadline = time.monotonic() + budget_s
        primary = pool.submit(call, index)
        pending = {primary}
        backup = None
        last_error: BaseException | None = None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("shard attempt exceeded its budget")
            timeout = remaining
            if cfg.hedge_ms is not None and backup is None:
                timeout = min(timeout, cfg.hedge_ms / 1e3)
            done, _ = wait(pending, timeout=timeout,
                           return_when=FIRST_COMPLETED)
            for future in done:
                pending.discard(future)
                exc = future.exception()
                if exc is None:
                    if backup is not None and future is backup:
                        self.stats.hedge_wins += 1
                    return future.result()
                last_error = exc
            if not pending:
                # Every launched attempt failed fast — let the retry
                # loop decide whether to go again.
                raise last_error
            if cfg.hedge_ms is not None and backup is None and not done:
                # The primary is a straggler: hedge it with a backup
                # drawing fresh decisions (the fault that slowed the
                # primary need not slow the backup).
                self.stats.hedges += 1
                backup = pool.submit(call, index)
                pending.add(backup)

    def _fanout_pool(self) -> ThreadPoolExecutor:
        """Lazily created, reused thread pool for the shard fan-out."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="shard-fanout")
        return self._pool

    def _attempts_pool(self) -> ThreadPoolExecutor:
        """Pool running individual resilient attempts (sized for every
        shard to hedge at once, plus headroom for abandoned stragglers
        still draining)."""
        if self._attempt_pool is None:
            self._attempt_pool = ThreadPoolExecutor(
                max_workers=2 * len(self.shard_indexes) + 2,
                thread_name_prefix="shard-attempt")
        return self._attempt_pool

    def close(self) -> None:
        """Shut down the fan-out pools (idempotent; router stays usable —
        the next concurrent route simply opens fresh pools)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._attempt_pool is not None:
            self._attempt_pool.shutdown(wait=True)
            self._attempt_pool = None

    def __repr__(self) -> str:
        m = self.snapshot.manifest
        return (f"ShardedTopKIndex(kind={self.kind!r}, "
                f"item_shards={m.num_item_shards}, "
                f"user_shards={m.num_user_shards}, "
                f"workers={self.workers}, "
                f"snapshot={m.version!r})")


def _merge_partials(partials: list[tuple[np.ndarray, np.ndarray]],
                    k: int, allow_underflow: bool = False
                    ) -> tuple[np.ndarray, np.ndarray]:
    """K-way heap merge of per-shard partial top-K lists, per user.

    Each partial is ``(global_ids, scores)`` of shape ``(m, k_s)`` with
    rows sorted by the canonical ``(score desc, id asc)`` order; the
    heap key ``(-score, id)`` preserves exactly that order across
    shards, so the first ``k`` popped entries equal the unsharded
    canonical ranking truncated at ``k``.

    **Underflow invariant.**  Every contract-abiding partial carries
    ``k_s = min(k, len(shard_s))`` columns, and ``k`` is clipped to the
    catalogue size upstream, so the total candidate count satisfies
    ``sum_s min(k, n_s) >= min(k, sum_s n_s) = k`` — the heap cannot
    drain before rank ``k``.  This holds for ANN candidate routing too:
    a shard owning fewer than ``k`` *candidates* for a user masks the
    non-candidates to ``-inf`` but still pads its partial to ``k_s``
    columns through the canonical ``(score desc, id asc)`` sentinel
    order of :func:`repro.eval.metrics.rank_items`
    (``tests/test_serve_sharded.py`` proves both cases).  A partial
    narrower than its contract width is therefore a caller bug, and the
    guard below fails loudly instead of raising a bare ``IndexError``
    from an empty heap.

    **Degraded merges** are the one sanctioned exception: when the
    resilient router drops failed shards, the survivors may genuinely
    hold fewer than ``k`` candidates.  ``allow_underflow=True`` pads
    the unfillable ranks with item ``-1`` / score ``-inf`` — an
    explicit hole, never a silently re-ranked shorter list.
    """
    if len(partials) == 1:
        ids, scores = partials[0]
        if allow_underflow and ids.shape[1] < k:
            pad = k - ids.shape[1]
            ids = np.concatenate(
                [ids, np.full((ids.shape[0], pad), -1, dtype=np.int64)],
                axis=1)
            scores = np.concatenate(
                [scores,
                 np.full((scores.shape[0], pad), -np.inf,
                         dtype=np.float64)], axis=1)
        return ids[:, :k], scores[:, :k]
    m = partials[0][0].shape[0]
    out_items = np.empty((m, k), dtype=np.int64)
    out_scores = np.empty((m, k), dtype=np.float64)
    for row in range(m):
        heap = []
        for s, (ids, scores) in enumerate(partials):
            if ids.shape[1]:
                heap.append((-scores[row, 0], int(ids[row, 0]), s, 0))
        heapq.heapify(heap)
        for rank in range(k):
            if not heap:
                if allow_underflow:
                    out_items[row, rank:] = -1
                    out_scores[row, rank:] = -np.inf
                    break
                total = sum(ids.shape[1] for ids, _ in partials)
                raise ValueError(
                    f"partial top-K underflow: {total} candidates across "
                    f"{len(partials)} shards cannot fill k={k}; every "
                    f"partial must carry min(k, shard_size) columns")
            neg_score, gid, s, pos = heapq.heappop(heap)
            out_items[row, rank] = gid
            out_scores[row, rank] = -neg_score
            pos += 1
            ids, scores = partials[s]
            if pos < ids.shape[1]:
                heapq.heappush(
                    heap, (-scores[row, pos], int(ids[row, pos]), s, pos))
    return out_items, out_scores


class ShardedRecommendationService(RecommendationService):
    """Request front end over a sharded snapshot (drop-in service).

    Everything request-facing — result LRU keyed on the snapshot's
    content hash, request micro-batching via ``submit()``/``flush()`` —
    is inherited from
    :class:`~repro.serve.service.RecommendationService`; only the index
    underneath is the scatter-gather router.

    Parameters
    ----------
    snapshot:
        Loaded :class:`~repro.serve.shard.ShardedSnapshot`.
    kind:
        Per-shard scorer kind (``"exact"`` / ``"quantized"``) when no
        explicit ``index`` is given.
    index:
        Pre-built :class:`ShardedTopKIndex`; must wrap the same sharded
        snapshot (checked by content version).
    cache_size, max_batch:
        As in the unsharded service.
    workers:
        Fan-out width of the constructed router (ignored when an
        explicit ``index`` is given); see :class:`ShardedTopKIndex`.
    resilience:
        Optional failure policy for the constructed router (ignored
        when an explicit ``index`` is given); see
        :class:`ShardedTopKIndex`.  Degraded routed answers surface as
        ``Recommendation.degraded`` and are never cached.
    """

    def __init__(self, snapshot: ShardedSnapshot, *, kind: str = "exact",
                 index: ShardedTopKIndex | None = None,
                 cache_size: int = 4096, max_batch: int = 256,
                 workers: int | None = None,
                 resilience: ResilienceConfig | None = None):
        if index is None:
            index = ShardedTopKIndex(snapshot, kind=kind,
                                     chunk_users=max_batch,
                                     workers=workers,
                                     resilience=resilience)
        super().__init__(snapshot, index=index, cache_size=cache_size,
                         max_batch=max_batch)

    def refresh(self, snapshot_or_deltas, *, index=None) -> int:
        """Swap in a new **sharded** snapshot (delta lists not accepted).

        Deltas describe edits to the unsharded row tables; replaying
        them against shard files would need a reshard, so the sharded
        service requires the caller to hand it the already-resharded
        :class:`~repro.serve.shard.ShardedSnapshot` (and, for
        ANN-routed setups, a refreshed router via ``index=``).  A path
        delegates to the verified
        :meth:`~repro.serve.service.RecommendationService.refresh_from_path`
        (quarantine-and-fall-back on damage) and must hold a sharded
        layout.
        """
        import pathlib
        if isinstance(snapshot_or_deltas, (str, pathlib.Path)):
            return self.refresh_from_path(snapshot_or_deltas, index=index)
        if not isinstance(snapshot_or_deltas, ShardedSnapshot):
            raise TypeError(
                "sharded services refresh from a ShardedSnapshot; apply "
                "deltas to the unsharded snapshot and re-shard it first")
        return self._swap(snapshot_or_deltas, index)

    @property
    def router_stats(self) -> RouterStats:
        """Scatter-gather timing counters of the underlying router."""
        return self.index.stats
