"""Batched recommendation front end over a top-K index.

:class:`RecommendationService` is the request-facing layer of the
serving stack.  It adds two things on top of an index:

* **Result caching** — an LRU of finished ``(items, scores)`` lists
  keyed on ``(snapshot version, index kind, user, k, filter_seen)``.
  Keying on the snapshot's content hash means a cache can never serve
  results from a previous model export: load a new snapshot and every
  old entry misses by construction.
* **Request micro-batching** — single-user lookups submitted via
  :meth:`submit` are coalesced and executed as one batched index sweep
  per :attr:`max_batch` requests (or on :meth:`flush`), amortizing the
  per-call matmul setup the way an online gateway batches concurrent
  traffic.  The vectorized :meth:`recommend` path chops arbitrarily
  large user batches into the same ``max_batch`` sweeps.
"""

from __future__ import annotations

import dataclasses
import pathlib
import threading
import time
from collections import OrderedDict

import numpy as np

from repro.obs.stats import RegistryBackedStats
from repro.obs.trace import get_tracer
from repro.serve.index import ExactTopKIndex, TopKIndex
from repro.serve.snapshot import EmbeddingSnapshot

__all__ = ["Recommendation", "ServiceStats", "LRUCache", "PendingRequest",
           "RecommendationService"]


@dataclasses.dataclass(frozen=True)
class Recommendation:
    """Top-K answer for one user, best item first.

    ``items``/``scores`` are read-only views shared with the service's
    result cache — call ``.copy()`` before mutating them.

    ``degraded`` marks an answer merged under partial shard coverage
    (the resilient router dropped a shard that failed its deadline
    budget): ``coverage`` is the catalogue fraction actually scored and
    unfillable ranks carry item ``-1`` / score ``-inf``.  Degraded
    answers are **never cached**, so one bad minute cannot keep serving
    partial lists after the shard recovers (``docs/robustness.md``).
    """

    user_id: int
    items: np.ndarray
    scores: np.ndarray
    snapshot_version: str
    from_cache: bool = False
    degraded: bool = False
    coverage: float = 1.0


class ServiceStats(RegistryBackedStats):
    """Lifetime counters (exported into the serve benchmark payload).

    A registry-backed view: each field is a ``serve.service.<field>``
    counter in the global :class:`~repro.obs.metrics.MetricsRegistry`
    (labeled per service instance), readable and writable
    attribute-style exactly like the dataclass it replaced — so the
    pinned accounting invariants below survive unchanged while the same
    counts flow to the Prometheus/JSON exporters.

    ``requests`` counts **client-facing** calls only: one per
    :meth:`RecommendationService.recommend` call and one per
    :meth:`RecommendationService.submit`.  The internal batched sweeps a
    ``flush()`` issues do not bump it.  Every user slot of every request
    lands in exactly one of ``cache_hits`` / ``cache_misses`` —
    including in-batch duplicates, which tally as hits — so
    ``cache_hits + cache_misses == users_served`` always holds and
    ``hit_rate`` describes the same population as ``users_served``.

    ``sweep_s`` accumulates wall-clock seconds spent inside the
    underlying index's ``topk`` sweeps — the "batch" term of the
    serving-runtime latency breakdown (queue wait lives on
    :class:`~repro.serve.runtime.RuntimeStats`, scatter/score/merge on
    :class:`~repro.serve.router.RouterStats`).
    """

    _PREFIX = "serve.service"
    _COUNTERS = {
        "requests": "client-facing recommend()/submit() calls",
        "users_served": "user slots answered (hits + misses)",
        "cache_hits": "user slots answered from the LRU or in-batch dedup",
        "cache_misses": "user slots that required index work",
        "index_sweeps": "batched index topk() sweeps issued",
        "sweep_s": "wall-clock seconds inside index topk() sweeps",
        "refreshes": "snapshot refresh() swaps applied",
        "cache_invalidated": "LRU entries evicted by refresh()",
        "degraded_served": "user slots answered with partial shard coverage",
        "refresh_rejected": "refresh() attempts rejected by verify failure",
    }

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def sweep_ms_per_sweep(self) -> float:
        """Mean wall-clock per index sweep (0.0 before any sweep ran)."""
        return 1e3 * self.sweep_s / self.index_sweeps \
            if self.index_sweeps else 0.0


class LRUCache:
    """Ordered-dict LRU used for finished recommendations.

    Explicitly **thread-safe**: the service is mutated from caller
    threads and the serving runtime's worker concurrently (``get`` /
    ``put`` on the request path, ``invalidate`` from ``refresh()``), so
    every operation — including the read-modify-evict sequence in
    ``put`` and the recency bump in ``get`` — holds one internal lock.
    Python's ``OrderedDict`` offers no atomicity for compound
    operations; without the lock a ``get`` racing an eviction can
    ``KeyError`` on a key it just saw.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key):
        """Return the cached value (refreshing recency) or ``None``."""
        with self._lock:
            if key not in self._data:
                return None
            self._data.move_to_end(key)
            return self._data[key]

    def put(self, key, value) -> None:
        """Insert/refresh a value, evicting the least recent past capacity."""
        if self.capacity == 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        """Drop every cached entry."""
        with self._lock:
            self._data.clear()

    def invalidate(self, predicate) -> int:
        """Drop every entry whose key satisfies ``predicate``; return count.

        Used by :meth:`RecommendationService.refresh` to evict exactly
        the entries keyed to a retired snapshot version while entries
        already keyed to the incoming version (e.g. warmed ahead of the
        swap) survive.  Atomic with respect to concurrent ``get`` /
        ``put``: the whole scan-and-drop happens under the lock, so a
        racing request can never resurrect a retired entry mid-sweep.
        """
        with self._lock:
            stale = [key for key in self._data if predicate(key)]
            for key in stale:
                del self._data[key]
            return len(stale)


class PendingRequest:
    """Handle for a micro-batched single-user lookup.

    ``result()`` returns the :class:`Recommendation`, flushing the
    service's pending queue first if this request has not been executed
    yet.
    """

    __slots__ = ("user_id", "k", "filter_seen", "_service", "_result")

    def __init__(self, service: "RecommendationService", user_id: int,
                 k: int, filter_seen: bool):
        self.user_id = user_id
        self.k = k
        self.filter_seen = filter_seen
        self._service = service
        self._result: Recommendation | None = None

    @property
    def done(self) -> bool:
        return self._result is not None

    def result(self) -> Recommendation:
        """The finished recommendation, flushing the queue if needed."""
        if self._result is None:
            self._service.flush()
        assert self._result is not None, "flush did not resolve this request"
        return self._result


class RecommendationService:
    """Serve ``recommend(user_ids, k)`` on top of a snapshot + index.

    Parameters
    ----------
    snapshot:
        Loaded :class:`~repro.serve.snapshot.EmbeddingSnapshot`.
    index:
        Pre-built :class:`~repro.serve.index.TopKIndex`; defaults to an
        :class:`~repro.serve.index.ExactTopKIndex` over ``snapshot``.
        Must wrap the same snapshot (checked by content version).  Any
        object speaking the ``topk``/``kind``/``snapshot`` protocol
        plugs in — including the approximate
        :class:`~repro.ann.ivf.IVFFlatIndex` /
        :class:`~repro.ann.pq.IVFPQIndex` candidate indexes, whose
        distinct ``kind`` keeps their cache entries separate from the
        exact index's.
    cache_size:
        LRU capacity in finished per-user lists; 0 disables caching.
    max_batch:
        Upper bound on users per index sweep — both the micro-batch
        flush threshold and the slice size of large ``recommend`` calls.
    """

    def __init__(self, snapshot: EmbeddingSnapshot, *,
                 index: TopKIndex | None = None, cache_size: int = 4096,
                 max_batch: int = 256):
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if index is not None and index.snapshot.version != snapshot.version:
            raise ValueError(
                f"index wraps snapshot {index.snapshot.version!r} but the "
                f"service was given {snapshot.version!r}")
        self.snapshot = snapshot
        self.index = index if index is not None else ExactTopKIndex(snapshot)
        self.cache = LRUCache(cache_size)
        self.max_batch = max_batch
        self.stats = ServiceStats()
        self._pending: list[PendingRequest] = []

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------
    def recommend(self, user_ids, k: int = 10,
                  filter_seen: bool = True) -> list[Recommendation]:
        """Top-``k`` recommendations for a batch of users.

        Cache hits are answered without touching the index; the misses
        are deduplicated and swept through the index in ``max_batch``
        slices.  Results come back in input order (duplicate user ids
        each get their own entry).
        """
        self.stats.requests += 1
        users = np.atleast_1d(np.asarray(user_ids, dtype=np.int64))
        with get_tracer().span("serve.service.recommend",
                               users=len(users), k=k):
            return self._serve(users, k, filter_seen)

    def _serve(self, users: np.ndarray, k: int,
               filter_seen: bool) -> list[Recommendation]:
        """Answer one prepared user batch (no ``requests`` bump).

        Shared by :meth:`recommend` (which counts the client call) and
        :meth:`flush` (whose client calls were already counted at
        ``submit`` time), so internal flush groups cannot inflate the
        request counter.
        """
        order = users.tolist()
        self.stats.users_served += len(order)
        results: dict[int, Recommendation] = {}
        misses: list[int] = []
        queued: set[int] = set()
        # Hit/miss tallies accumulate in locals and publish once below:
        # the stats fields are lock-protected registry counters now, so
        # per-user updates would put O(users) lock traffic on the hot
        # path (the obs benchmark pins this path within 5% of
        # telemetry-off).
        hits = 0
        for user in order:
            if user in results or user in queued:
                # In-batch duplicate: answered from the first
                # occurrence's result with no extra index work — a hit,
                # so hits + misses always reconciles with users_served.
                hits += 1
                continue
            cached = self.cache.get(self._key(user, k, filter_seen))
            if cached is not None:
                hits += 1
                items, scores = cached
                results[user] = Recommendation(
                    user_id=user, items=items, scores=scores,
                    snapshot_version=self.snapshot.version, from_cache=True)
            else:
                queued.add(user)
                misses.append(user)
        self.stats.cache_hits += hits
        self.stats.cache_misses += len(misses)
        for lo in range(0, len(misses), self.max_batch):
            batch = np.asarray(misses[lo:lo + self.max_batch], dtype=np.int64)
            sweep_start = time.perf_counter()
            top = self.index.topk(batch, k=k, filter_seen=filter_seen)
            sweep_end = time.perf_counter()
            # The span reuses the exact readings that feed ``sweep_s``,
            # so the trace and the counters can never disagree.
            get_tracer().record("serve.service.sweep", sweep_start,
                                sweep_end, users=len(batch))
            self.stats.sweep_s += sweep_end - sweep_start
            self.stats.index_sweeps += 1
            coverage = getattr(top, "coverage", 1.0)
            degraded = coverage < 1.0
            if degraded:
                self.stats.degraded_served += len(batch)
            for row, user in enumerate(batch.tolist()):
                items = top.items[row].copy()
                scores = top.scores[row].copy()
                # Frozen before caching: the same arrays back both the
                # cache entry and the returned Recommendation, so a
                # caller mutating a result must fail loudly instead of
                # silently poisoning every future cache hit.
                items.flags.writeable = False
                scores.flags.writeable = False
                if not degraded:
                    # Degraded lists never enter the LRU: a cached
                    # partial answer would keep serving after the shard
                    # recovered, and there is no TTL to age it out.
                    self.cache.put(self._key(user, k, filter_seen),
                                   (items, scores))
                results[user] = Recommendation(
                    user_id=user, items=items, scores=scores,
                    snapshot_version=self.snapshot.version,
                    degraded=degraded, coverage=coverage)
        out: list[Recommendation] = []
        emitted: set[int] = set()
        for user in order:
            rec = results[user]
            if user in emitted and not rec.from_cache:
                # Duplicate of an in-batch miss: served from the first
                # occurrence's freshly computed lists, which is a cache
                # hit from this slot's point of view.
                rec = dataclasses.replace(rec, from_cache=True)
            emitted.add(user)
            out.append(rec)
        return out

    def recommend_one(self, user_id: int, k: int = 10,
                      filter_seen: bool = True) -> Recommendation:
        """Single-user convenience wrapper over :meth:`recommend`."""
        return self.recommend([user_id], k=k, filter_seen=filter_seen)[0]

    # ------------------------------------------------------------------
    # Micro-batched path
    # ------------------------------------------------------------------
    def submit(self, user_id: int, k: int = 10,
               filter_seen: bool = True) -> PendingRequest:
        """Enqueue one lookup; executes when ``max_batch`` accumulate.

        Returns a :class:`PendingRequest` whose ``result()`` forces a
        flush if needed — so callers can fire off a burst of submits and
        then read results, paying one index sweep instead of a sweep per
        user.  Each submit counts as one client request in
        :attr:`stats`; the flush that later executes it does not count
        again.
        """
        self.stats.requests += 1
        request = PendingRequest(self, user_id, k, filter_seen)
        self._pending.append(request)
        if len(self._pending) >= self.max_batch:
            self.flush()
        return request

    def flush(self) -> None:
        """Execute every pending micro-batched request."""
        pending, self._pending = self._pending, []
        # Group by (k, filter_seen) so one flush still issues batched
        # sweeps even when interleaved request shapes differ.
        groups: dict[tuple[int, bool], list[PendingRequest]] = {}
        for request in pending:
            groups.setdefault((request.k, request.filter_seen),
                              []).append(request)
        with get_tracer().span("serve.service.flush",
                               requests=len(pending)):
            for (k, filter_seen), members in groups.items():
                answers = self._serve(
                    np.asarray([m.user_id for m in members],
                               dtype=np.int64),
                    k, filter_seen)
                for member, answer in zip(members, answers):
                    member._result = answer

    @property
    def pending(self) -> int:
        """Number of queued micro-batched requests."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Live refresh
    # ------------------------------------------------------------------
    def refresh(self, snapshot_or_deltas, *,
                index: TopKIndex | None = None) -> int:
        """Swap in a new snapshot version; returns evicted cache entries.

        ``snapshot_or_deltas`` is either a loaded
        :class:`~repro.serve.snapshot.EmbeddingSnapshot`, a path to a
        snapshot directory (delegated to :meth:`refresh_from_path`,
        which verifies, quarantines on damage, and falls back to the
        current version), or a list of
        :class:`~repro.serve.delta.Delta` objects, which are replayed
        in-memory against the current snapshot
        (:func:`~repro.serve.delta.apply_deltas`).  ``index`` overrides
        the refreshed index; by default the current index's
        ``refreshed(snapshot)`` rebuilds or incrementally updates it.

        The swap is atomic from a caller's point of view: pending
        micro-batched requests are flushed against the *old* snapshot
        first (they were accepted under that version), then snapshot,
        index, and cache move together.  Only cache entries keyed to
        retired ``(version, kind)`` pairs are evicted — entries already
        keyed to the incoming version survive.
        """
        if isinstance(snapshot_or_deltas, (str, pathlib.Path)):
            return self.refresh_from_path(snapshot_or_deltas, index=index)
        if isinstance(snapshot_or_deltas, EmbeddingSnapshot):
            snapshot = snapshot_or_deltas
        else:
            from repro.serve.delta import apply_deltas
            snapshot = apply_deltas(self.snapshot, list(snapshot_or_deltas))
        return self._swap(snapshot, index)

    def refresh_from_path(self, path, *, mmap: bool = True,
                          quarantine: bool = True, index=None) -> int:
        """Verified refresh from a snapshot directory, with fallback.

        Loads ``path`` (sharded or not — detected by layout) with
        ``verify=True`` and swaps it in.  A snapshot that fails to load
        or fails its content-hash verify is **rejected**: the service
        keeps serving its current (last-good) version untouched, the
        damaged directory is moved aside
        (:func:`~repro.serve.snapshot.quarantine_snapshot`, unless
        ``quarantine=False``), and
        :class:`~repro.serve.snapshot.SnapshotIntegrityError` is raised
        with the quarantine location attached — the explicit
        alternative to either crashing the serving path or silently
        serving corrupt embeddings.
        """
        from repro.serve.snapshot import (SnapshotIntegrityError,
                                          is_sharded_snapshot, load_snapshot,
                                          quarantine_snapshot)
        path = pathlib.Path(path)
        try:
            if is_sharded_snapshot(path):
                from repro.serve.shard import load_sharded_snapshot
                snapshot = load_sharded_snapshot(path, mmap=mmap,
                                                 verify=True)
            else:
                snapshot = load_snapshot(path, mmap=mmap, verify=True)
        except Exception as exc:
            self.stats.refresh_rejected += 1
            quarantined = None
            if quarantine and path.exists():
                quarantined = quarantine_snapshot(path)
            raise SnapshotIntegrityError(
                f"refresh from {path} rejected ({exc}); still serving "
                f"last-good snapshot {self.snapshot.version!r}"
                + (f"; damaged files moved to {quarantined}"
                   if quarantined is not None else ""),
                quarantined_to=quarantined) from exc
        return self.refresh(snapshot, index=index)

    def _swap(self, snapshot, index: TopKIndex | None) -> int:
        """Version-checked snapshot/index/cache swap shared with the
        sharded service (whose ``refresh`` validates its own input)."""
        if index is None:
            index = self.index.refreshed(snapshot)
        if index.snapshot.version != snapshot.version:
            raise ValueError(
                f"refresh index wraps snapshot {index.snapshot.version!r} "
                f"but the service was given {snapshot.version!r}")
        self.flush()
        self.snapshot = snapshot
        self.index = index
        live = (snapshot.version, index.kind)
        invalidated = self.cache.invalidate(lambda key: key[:2] != live)
        self.stats.refreshes += 1
        self.stats.cache_invalidated += invalidated
        return invalidated

    # ------------------------------------------------------------------
    def _key(self, user: int, k: int, filter_seen: bool) -> tuple:
        return (self.snapshot.version, self.index.kind, user, k, filter_seen)

    def __repr__(self) -> str:
        return (f"RecommendationService(index={self.index.kind!r}, "
                f"snapshot={self.snapshot.version!r}, "
                f"cache={len(self.cache)}/{self.cache.capacity}, "
                f"hit_rate={self.stats.hit_rate:.2%})")
