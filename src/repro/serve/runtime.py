"""Async SLO-driven serving runtime: admission, batching, backpressure.

:class:`ServingRuntime` is the request runtime the ROADMAP's "heavy
traffic" items call for.  It puts a **bounded admission queue** in front
of a :class:`~repro.serve.service.RecommendationService` and drains it
from a background worker thread in **adaptive micro-batches**:

* **Admission / overload.**  :meth:`ServingRuntime.submit` enqueues one
  request and returns an :class:`AsyncRequest` future.  When the queue
  holds ``max_queue`` requests the submit is **shed** — it raises
  :class:`OverloadError` immediately instead of growing an unbounded
  backlog whose every entry would blow the latency SLO anyway.  Shed
  counts are tracked on :class:`RuntimeStats` and reported as the
  ``shed_rate`` column of the latency benchmark.
* **Adaptive micro-batch sizing.**  The worker collects up to
  ``batch_size`` queued requests per sweep.  Every ``window`` completed
  requests it re-reads the recent p99 latency: while p99 is under
  ``headroom * slo_ms`` the batch grows multiplicatively (amortizing
  per-sweep overhead → more throughput), and once p99 crosses the SLO
  it shrinks multiplicatively (smaller sweeps → lower queueing delay).
  The batch size always stays inside ``[min_batch, max_batch]``.
* **Latency breakdown.**  Each request records wall-clock queue wait
  and in-batch service time; the service underneath accumulates index
  sweep seconds (``ServiceStats.sweep_s``) and — when serving a sharded
  snapshot — the router splits its time into gather/score/merge
  (:class:`~repro.serve.router.RouterStats`).  :meth:`ServingRuntime.breakdown`
  stitches the three layers into one per-request view.

The runtime never changes *what* is served: results are exactly the
service's ``recommend`` answers, so every parity/caching contract of
the layers below carries through unchanged.  The full contract is
documented in ``docs/serving.md``; the closed-loop load generator in
:mod:`repro.experiments.perf` (``repro perf-latency``) sweeps offered
load through this runtime until saturation and commits the
``BENCH_latency.json`` frontier.
"""

from __future__ import annotations

import collections
import dataclasses
import queue
import threading
import time

import numpy as np

from repro.obs.metrics import Reservoir, get_registry
from repro.obs.stats import RegistryBackedStats
from repro.obs.trace import get_tracer

__all__ = ["OverloadError", "DeadlineExceeded", "WorkerCrashed",
           "RuntimeConfig", "RuntimeStats", "AsyncRequest",
           "ServingRuntime", "latency_percentile"]


class OverloadError(RuntimeError):
    """Raised by ``submit`` when the bounded admission queue is full."""


class DeadlineExceeded(RuntimeError):
    """A request spent longer than its deadline in the admission queue.

    Raised *through the future* (``AsyncRequest.result()``), never
    silently: a request that already blew its budget waiting is failed
    when the worker picks it up instead of being served late — the
    caller has certainly stopped waiting, and serving it would only
    push the requests behind it past their own deadlines.
    """


class WorkerCrashed(RuntimeError):
    """The runtime's worker loop died; pending futures carry the cause.

    Surfaced in two places: on every future that was pending when the
    worker crashed (``__cause__`` holds the original exception), and
    from ``submit()`` once the supervisor has fail-stopped (crash
    budget exhausted, or ``restart_on_crash=False``) — the runtime
    refuses new work loudly instead of queueing into a dead loop.
    """


def latency_percentile(samples, q: float) -> float:
    """Linear-interpolated percentile of a sample sequence.

    Returns ``0.0`` for an empty sequence so benchmark columns stay
    finite even for levels where nothing completed.
    """
    if len(samples) == 0:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


@dataclasses.dataclass
class RuntimeConfig:
    """Knobs of the admission queue and the batch-size controller.

    ``slo_ms`` is a **p99 target** over the most recent ``window``
    completed requests — tail latency, not the mean, because heavy
    traffic is judged by its slowest percentile.
    """

    #: p99 latency target (enqueue → result ready), milliseconds
    slo_ms: float = 50.0
    #: admission-queue bound; a full queue sheds instead of growing
    max_queue: int = 1024
    #: micro-batch size limits and starting point
    min_batch: int = 1
    max_batch: int = 256
    initial_batch: int = 8
    #: completed requests between batch-size adaptations (also the
    #: sliding-window length of the controller's p99 estimate)
    window: int = 64
    #: grow the batch while recent p99 < headroom * slo_ms
    headroom: float = 0.7
    #: multiplicative batch growth / shrink factors
    grow: float = 2.0
    shrink: float = 0.5
    #: idle worker poll interval, milliseconds
    poll_ms: float = 0.2
    #: lifetime latency sample kept for :meth:`ServingRuntime.latency_quantiles`
    #: — a fixed-size seeded reservoir, so memory stays bounded over
    #: arbitrarily long soaks while the quantiles describe the whole run
    reservoir_size: int = 2048
    reservoir_seed: int = 0
    #: per-request deadline (enqueue → batch start), milliseconds; a
    #: request still queued past it fails with :class:`DeadlineExceeded`
    #: when the worker picks it up.  ``None`` disables deadlines.
    deadline_ms: float | None = None
    #: supervisor policy after a worker-loop crash: restart in place
    #: (up to ``max_restarts`` times) or fail-stop immediately
    restart_on_crash: bool = True
    max_restarts: int = 3

    def __post_init__(self):
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, "
                             f"got {self.deadline_ms}")
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, "
                             f"got {self.max_restarts}")
        if self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {self.slo_ms}")
        if self.max_queue <= 0:
            raise ValueError(f"max_queue must be positive, "
                             f"got {self.max_queue}")
        if not 0 < self.min_batch <= self.max_batch:
            raise ValueError(f"need 0 < min_batch <= max_batch, got "
                             f"[{self.min_batch}, {self.max_batch}]")
        if not self.min_batch <= self.initial_batch <= self.max_batch:
            raise ValueError(f"initial_batch {self.initial_batch} outside "
                             f"[{self.min_batch}, {self.max_batch}]")
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if not 0 < self.headroom <= 1:
            raise ValueError(f"headroom must lie in (0, 1], "
                             f"got {self.headroom}")
        if self.grow <= 1 or not 0 < self.shrink < 1:
            raise ValueError(f"need grow > 1 and 0 < shrink < 1, got "
                             f"grow={self.grow}, shrink={self.shrink}")
        if self.poll_ms <= 0:
            raise ValueError(f"poll_ms must be positive, got {self.poll_ms}")
        if self.reservoir_size <= 0:
            raise ValueError(f"reservoir_size must be positive, "
                             f"got {self.reservoir_size}")


class RuntimeStats(RegistryBackedStats):
    """Lifetime counters of one runtime (feeds ``BENCH_latency.json``).

    A registry-backed view (see
    :class:`~repro.obs.stats.RegistryBackedStats`): each field is a
    ``serve.runtime.<field>`` counter labeled per runtime instance,
    mutated attribute-style exactly like the dataclass it replaced.

    ``queue_s`` / ``service_s`` are **per-request sums**: each completed
    request contributes its own queue wait and its batch's execution
    time, so dividing by ``completed`` gives the mean per-request
    breakdown terms.
    """

    _PREFIX = "serve.runtime"
    _COUNTERS = {
        "admitted": "requests accepted into the bounded queue",
        "rejected": "requests shed at admission (queue full)",
        "completed": "requests finished by the worker",
        "batches": "micro-batches executed",
        "queue_s": "per-request admission-to-batch-start wait, summed",
        "service_s": "per-request batch execution time, summed",
        "grows": "batch-size controller growth steps",
        "shrinks": "batch-size controller shrink steps",
        "refreshes": "snapshot refreshes applied between batches",
        "refresh_s": "seconds spent applying refreshes",
        "deadline_expired": "requests failed in queue past their deadline",
        "worker_crashes": "worker-loop crashes caught by the supervisor",
        "worker_restarts": "supervisor restarts after a crash",
    }

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests refused at admission."""
        offered = self.admitted + self.rejected
        return self.rejected / offered if offered else 0.0

    @property
    def mean_batch(self) -> float:
        """Mean requests per executed micro-batch."""
        return self.completed / self.batches if self.batches else 0.0


class AsyncRequest:
    """Future-like handle for one admitted request.

    ``result()`` blocks until the worker thread publishes the
    :class:`~repro.serve.service.Recommendation` (or re-raises the
    worker-side error).  Timestamps are ``time.perf_counter()`` values
    stamped by the runtime; the ``*_ms`` properties expose the
    per-request latency breakdown once the request finished.
    """

    __slots__ = ("user_id", "k", "filter_seen", "enqueued_at", "started_at",
                 "finished_at", "deadline_at", "_event", "_result", "_error")

    def __init__(self, user_id: int, k: int, filter_seen: bool):
        self.user_id = user_id
        self.k = k
        self.filter_seen = filter_seen
        self.enqueued_at: float | None = None
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.deadline_at: float | None = None
        self._event = threading.Event()
        self._result = None
        self._error: BaseException | None = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """The finished recommendation (blocks up to ``timeout`` s)."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"request for user {self.user_id} still "
                               f"pending after {timeout}s")
        if self._error is not None:
            raise self._error
        return self._result

    @property
    def queue_ms(self) -> float:
        """Admission-to-batch-start wait (0.0 until started)."""
        if self.started_at is None or self.enqueued_at is None:
            return 0.0
        return 1e3 * (self.started_at - self.enqueued_at)

    @property
    def service_ms(self) -> float:
        """Batch execution time of the sweep that served this request."""
        if self.finished_at is None or self.started_at is None:
            return 0.0
        return 1e3 * (self.finished_at - self.started_at)

    @property
    def latency_ms(self) -> float:
        """End-to-end enqueue → result latency (0.0 until finished)."""
        if self.finished_at is None or self.enqueued_at is None:
            return 0.0
        return 1e3 * (self.finished_at - self.enqueued_at)


class ServingRuntime:
    """Bounded-queue, SLO-batched front end over a recommendation service.

    Parameters
    ----------
    service:
        Any :class:`~repro.serve.service.RecommendationService`
        (sharded or not).  The runtime owns request admission and
        batching; the service keeps owning caching and index sweeps.
    config:
        :class:`RuntimeConfig`; defaults target a 50 ms p99.

    Use as a context manager (or call :meth:`start` / :meth:`stop`)::

        with ServingRuntime(service, RuntimeConfig(slo_ms=25.0)) as rt:
            handles = [rt.submit(u, k=10) for u in users]
            lists = [h.result(timeout=5.0) for h in handles]

    ``stop()`` drains every already-admitted request before the worker
    exits, so accepted work is never silently dropped.
    """

    def __init__(self, service, config: RuntimeConfig | None = None):
        self.service = service
        self.config = config or RuntimeConfig()
        self.stats = RuntimeStats()
        self.batch_size = self.config.initial_batch
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.max_queue)
        # Recent-window samples feed the batch-size controller only; the
        # bounded seeded reservoir keeps a lifetime-representative sample
        # for latency_quantiles() without ever growing RSS.
        self._latencies: collections.deque = collections.deque(
            maxlen=self.config.window)
        self._reservoir = Reservoir(capacity=self.config.reservoir_size,
                                    seed=self.config.reservoir_seed)
        registry = get_registry()
        # Share the stats view's instance label so one runtime is one
        # instance across its counters, histograms and gauge.
        labels = self.stats.obs_labels
        self._hist_latency = registry.histogram(
            "serve.runtime.latency_ms",
            "end-to-end enqueue-to-result latency", labels=labels)
        self._hist_queue = registry.histogram(
            "serve.runtime.queue_ms",
            "admission-to-batch-start wait", labels=labels)
        self._gauge_batch = registry.gauge(
            "serve.runtime.batch_size",
            "current adaptive micro-batch size", labels=labels)
        self._gauge_batch.set(self.batch_size)
        self._since_adapt = 0
        self._stop = threading.Event()
        self._worker: threading.Thread | None = None
        self._refresh_lock = threading.Lock()
        self._refresh_slot: dict | None = None
        self._crash_count = 0
        self._fatal: BaseException | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._worker is not None and self._worker.is_alive()

    def start(self) -> "ServingRuntime":
        """Spawn the worker thread (idempotent while running).

        Starting a runtime that previously **fail-stopped** clears the
        fatal state and the crash budget — an explicit operator restart
        begins a fresh supervision episode.
        """
        if not self.running:
            self._stop.clear()
            self._fatal = None
            self._crash_count = 0
            self._worker = threading.Thread(target=self._run,
                                            name="serving-runtime",
                                            daemon=True)
            self._worker.start()
        return self

    def stop(self) -> None:
        """Drain admitted requests, then join the worker (idempotent)."""
        if self._worker is None:
            return
        self._stop.set()
        self._worker.join()
        self._worker = None
        # A refresh posted after the worker's final slot check would
        # otherwise strand its waiter; apply it synchronously now.
        self._apply_refresh()

    def __enter__(self) -> "ServingRuntime":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, user_id: int, k: int = 10,
               filter_seen: bool = True) -> AsyncRequest:
        """Admit one request, or shed it with :class:`OverloadError`.

        Sheds *immediately* when the queue is at ``max_queue`` — the
        explicit overload contract: a caller sees backpressure at
        submit time rather than a result that silently missed the SLO
        after minutes in an unbounded backlog.

        Raises :class:`WorkerCrashed` when the runtime has fail-stopped
        — new work is refused loudly instead of queueing into a dead
        loop (call :meth:`start` again for an explicit restart).
        """
        self._check_worker()
        request = AsyncRequest(user_id, k, filter_seen)
        request.enqueued_at = time.perf_counter()
        if self.config.deadline_ms is not None:
            request.deadline_at = (request.enqueued_at
                                   + self.config.deadline_ms / 1e3)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self.stats.rejected += 1
            raise OverloadError(
                f"admission queue full ({self.config.max_queue} pending); "
                f"request for user {user_id} shed") from None
        self.stats.admitted += 1
        return request

    @property
    def pending(self) -> int:
        """Admitted requests not yet picked up by the worker."""
        return self._queue.qsize()

    def _check_worker(self) -> None:
        """Watchdog at the interaction points: surface a dead worker.

        Covers both death modes — the supervisor fail-stopped (fatal is
        recorded), or the thread died without passing through the
        supervisor at all (nothing in the loop should allow that; if it
        happens anyway, pending futures are failed here rather than
        hanging until their timeouts).
        """
        if self._fatal is not None:
            raise WorkerCrashed(
                f"serving worker fail-stopped: {self._fatal!r}; "
                f"call start() to restart") from self._fatal
        worker = self._worker
        if (worker is not None and not worker.is_alive()
                and not self._stop.is_set()):
            self._fatal = RuntimeError("worker thread died unexpectedly")
            self.stats.worker_crashes += 1
            self._fail_pending(WorkerCrashed(
                "worker thread died unexpectedly"))
            raise WorkerCrashed(
                "serving worker thread died unexpectedly; "
                "call start() to restart")

    def _fail_pending(self, error: BaseException) -> int:
        """Fail every queued request with ``error``; returns the count."""
        failed = 0
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                return failed
            request._error = error
            request._event.set()
            failed += 1

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Readiness probe: ``ok`` iff the worker is alive and sane.

        Cheap enough to poll from a load balancer loop; ``fatal``
        carries the repr of the crash that fail-stopped the runtime (or
        ``None``).
        """
        running = self.running
        return {
            "ok": running and self._fatal is None,
            "running": running,
            "pending": self.pending,
            "batch_size": self.batch_size,
            "worker_crashes": int(self.stats.worker_crashes),
            "worker_restarts": int(self.stats.worker_restarts),
            "fatal": repr(self._fatal) if self._fatal is not None else None,
            "snapshot_version": self.service.snapshot.version,
        }

    # ------------------------------------------------------------------
    # Live refresh
    # ------------------------------------------------------------------
    def refresh(self, snapshot_or_deltas, *, index=None,
                timeout: float = 30.0) -> int:
        """Atomically swap the served snapshot between micro-batches.

        Delegates to
        :meth:`~repro.serve.service.RecommendationService.refresh`, but
        never concurrently with a sweep: while the worker is running the
        swap request parks in a one-deep slot that the worker applies
        *between* batches, so every request is served entirely by one
        snapshot version — no torn reads, no dropped requests.  Blocks
        until the swap lands (or ``timeout`` seconds pass) and returns
        the number of cache entries invalidated.  With the worker
        stopped the swap runs synchronously on the caller's thread.
        """
        slot = {"args": (snapshot_or_deltas, index),
                "done": threading.Event(), "error": None, "invalidated": 0}
        with self._refresh_lock:
            if self._refresh_slot is not None:
                raise RuntimeError("a refresh is already in flight")
            self._refresh_slot = slot
        if not self.running:
            self._apply_refresh()
        if not slot["done"].wait(timeout):
            raise TimeoutError(f"refresh still pending after {timeout}s")
        if slot["error"] is not None:
            raise slot["error"]
        return slot["invalidated"]

    def _apply_refresh(self) -> None:
        """Apply a parked refresh, if any (worker thread, between batches)."""
        with self._refresh_lock:
            slot, self._refresh_slot = self._refresh_slot, None
        if slot is None:
            return
        # When tracing is on, refresh_s is accumulated from the span's
        # own clock readings, so the trace and the counter agree exactly.
        with get_tracer().span("serve.runtime.refresh") as span:
            started = span.start_s if span is not None \
                else time.perf_counter()
            try:
                snapshot_or_deltas, index = slot["args"]
                slot["invalidated"] = self.service.refresh(
                    snapshot_or_deltas, index=index)
            except BaseException as exc:
                slot["error"] = exc
        ended = span.end_s if span is not None else time.perf_counter()
        if slot["error"] is None:
            self.stats.refreshes += 1
            self.stats.refresh_s += ended - started
        slot["done"].set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def latency_quantiles(self, qs=(50.0, 99.0)) -> dict:
        """Lifetime latency quantiles, e.g. ``{"p50_ms": ...}``.

        Computed over a fixed-size seeded reservoir sample of *every*
        completed request (capacity ``config.reservoir_size``), so the
        estimate covers the whole soak at bounded memory.  The batch-size
        controller keeps using its separate recent-window deque.
        """
        samples = self._reservoir.values()
        return {f"p{q:g}_ms": latency_percentile(samples, q) for q in qs}

    def breakdown(self) -> dict:
        """Mean per-request queue/batch/score/merge decomposition (ms).

        ``queue_ms`` / ``service_ms`` come from this runtime's own
        counters, ``sweep_ms`` from the service's index-sweep clock, and
        — when the service routes a sharded snapshot — the router's
        gather/score/merge split is appended per sweep.

        With tracing enabled (:func:`repro.obs.trace.tracing`) these
        counters are accumulated from the batch/refresh spans' own clock
        readings, so this breakdown and the captured span trees are two
        projections of the same measurements — they reconcile exactly
        (``tests/test_obs_integration.py`` pins
        ``sum(span durations × batch) == service_s``).
        """
        n = max(self.stats.completed, 1)
        out = {
            "queue_ms": 1e3 * self.stats.queue_s / n,
            "service_ms": 1e3 * self.stats.service_s / n,
            "sweep_ms": self.service.stats.sweep_ms_per_sweep,
            "refresh_ms": (1e3 * self.stats.refresh_s / self.stats.refreshes
                           if self.stats.refreshes else 0.0),
            "mean_batch": self.stats.mean_batch,
            "batch_size": self.batch_size,
        }
        router = getattr(self.service, "router_stats", None)
        if router is not None:
            sweeps = max(router.sweeps, 1)
            out.update({
                "gather_ms": 1e3 * router.gather_s / sweeps,
                "score_ms": 1e3 * router.score_s / sweeps,
                "merge_ms": 1e3 * router.merge_s / sweeps,
            })
        return out

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _run(self) -> None:
        """Supervised worker loop.

        ``_execute`` already guarantees every picked-up future resolves,
        so nothing in the loop body *should* escape — but a bug must not
        leave callers blocked on futures forever.  The supervisor
        catches any escape, fails the whole backlog with
        :class:`WorkerCrashed` (carrying the cause), and either restarts
        the loop in place (``restart_on_crash``, up to ``max_restarts``)
        or fail-stops: the thread exits, :meth:`health` reports the
        fatal cause, and :meth:`submit` refuses new work loudly.
        """
        while True:
            try:
                # Swaps land here — strictly between micro-batches, so a
                # batch in flight always finishes on the version it
                # started.
                self._apply_refresh()
                batch = self._collect_batch()
                if batch:
                    self._execute(batch)
                elif self._stop.is_set():
                    return
            except BaseException as exc:  # noqa: BLE001 — supervisor
                self._crash_count += 1
                self.stats.worker_crashes += 1
                crash = WorkerCrashed(f"serving worker crashed: {exc!r}")
                crash.__cause__ = exc
                self._fail_pending(crash)
                if (self._stop.is_set()
                        or not self.config.restart_on_crash
                        or self._crash_count > self.config.max_restarts):
                    self._fatal = exc
                    return
                self.stats.worker_restarts += 1

    def _collect_batch(self) -> list[AsyncRequest]:
        """Up to ``batch_size`` queued requests; [] after an idle poll.

        Requests whose deadline already passed while queued are failed
        here with :class:`DeadlineExceeded` — the deadline is enforced
        at pickup, before any service work is spent on a request whose
        caller has stopped waiting.
        """
        try:
            first = self._queue.get(timeout=1e-3 * self.config.poll_ms)
        except queue.Empty:
            return []
        batch = [first]
        while len(batch) < self.batch_size:
            try:
                batch.append(self._queue.get_nowait())
            except queue.Empty:
                break
        if self.config.deadline_ms is None:
            return batch
        now = time.perf_counter()
        live = []
        for request in batch:
            if request.deadline_at is not None and now > request.deadline_at:
                self.stats.deadline_expired += 1
                request._error = DeadlineExceeded(
                    f"request for user {request.user_id} waited "
                    f"{1e3 * (now - request.enqueued_at):.1f} ms in queue "
                    f"(deadline {self.config.deadline_ms:g} ms)")
                request._event.set()
            else:
                live.append(request)
        return live

    def _execute(self, batch: list[AsyncRequest]) -> None:
        # Resolution guarantee: every request in ``batch`` gets its
        # event set before this method returns — by the normal
        # accounting loop, or by the ``finally`` backstop if anything
        # escapes.  A picked-up future must never hang.
        try:
            self._execute_inner(batch)
        finally:
            for request in batch:
                if not request._event.is_set():
                    if request._error is None and request._result is None:
                        request._error = WorkerCrashed(
                            "worker failed before publishing this batch")
                    request._event.set()

    def _execute_inner(self, batch: list[AsyncRequest]) -> None:
        # When tracing is on, the batch span's own clock readings become
        # started/finished, so the span tree and the queue_s/service_s
        # counters are derived from the same samples — breakdown() and a
        # trace can never disagree (pinned by tests/test_obs_integration).
        with get_tracer().span("serve.runtime.batch",
                               batch=len(batch)) as span:
            started = span.start_s if span is not None \
                else time.perf_counter()
            groups: dict[tuple[int, bool], list[AsyncRequest]] = {}
            for request in batch:
                groups.setdefault((request.k, request.filter_seen),
                                  []).append(request)
            for (k, filter_seen), members in groups.items():
                try:
                    answers = self.service.recommend(
                        [m.user_id for m in members], k=k,
                        filter_seen=filter_seen)
                    if len(answers) != len(members):
                        # A short/long answer list must not zip into
                        # silent Nones for the tail of the group.
                        raise RuntimeError(
                            f"service returned {len(answers)} answers "
                            f"for {len(members)} requests")
                except BaseException as exc:  # propagate to every waiter
                    for member in members:
                        member._error = exc
                else:
                    for member, answer in zip(members, answers):
                        member._result = answer
        finished = span.end_s if span is not None else time.perf_counter()
        self.stats.batches += 1
        self.stats.completed += len(batch)
        # Sum per-request terms locally and publish once: instrument
        # writes are lock-protected, so per-request updates would put
        # O(batch) lock traffic on the hot path.
        queue_s = 0.0
        for request in batch:
            request.started_at = started
            request.finished_at = finished
            queue_s += started - request.enqueued_at
            latency_ms = request.latency_ms
            self._latencies.append(latency_ms)
            self._reservoir.add(latency_ms)
            self._hist_latency.observe(latency_ms)
            self._hist_queue.observe(request.queue_ms)
            request._event.set()
        self.stats.queue_s += queue_s
        self.stats.service_s += (finished - started) * len(batch)
        self._since_adapt += len(batch)
        if self._since_adapt >= self.config.window:
            self._adapt()

    def _adapt(self) -> None:
        """One batch-size controller step from the recent-window p99."""
        self._since_adapt = 0
        config = self.config
        p99 = latency_percentile(list(self._latencies), 99.0)
        if p99 > config.slo_ms and self.batch_size > config.min_batch:
            self.batch_size = max(config.min_batch,
                                  int(self.batch_size * config.shrink))
            self.stats.shrinks += 1
        elif (p99 < config.headroom * config.slo_ms
              and self.batch_size < config.max_batch):
            self.batch_size = min(config.max_batch,
                                  max(self.batch_size + 1,
                                      int(self.batch_size * config.grow)))
            self.stats.grows += 1
        self._gauge_batch.set(self.batch_size)

    def __repr__(self) -> str:
        return (f"ServingRuntime(running={self.running}, "
                f"batch_size={self.batch_size}, pending={self.pending}, "
                f"slo_ms={self.config.slo_ms}, "
                f"shed_rate={self.stats.shed_rate:.2%})")
