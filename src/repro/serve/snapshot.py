"""Frozen embedding snapshots: the training → serving hand-off format.

A *snapshot* is a directory holding everything the online stack needs to
answer "what do we recommend to user ``u``?" without ever touching the
training graph again:

* ``user_embeddings.npy`` / ``item_embeddings.npy`` — the backbone's
  **final** embedding tables with graph propagation already applied
  (``model.propagate()`` in eval mode), stored as plain ``.npy`` so they
  can be memory-mapped read-only by any number of serving processes;
* ``seen_indptr.npy`` / ``seen_items.npy`` — the training interactions
  in CSR layout, consumed by :func:`repro.eval.masking.mask_seen_items`
  to filter already-seen items at request time;
* ``manifest.json`` — a versioned :class:`SnapshotManifest` recording
  the model, sizes, scoring function and a content hash, so a service
  can detect stale caches and refuse mismatched artifacts.

Because propagation is baked in at export time, serving cost is one
dense gather + matmul per request batch regardless of backbone depth —
a LightGCN-3 snapshot serves exactly as fast as an MF snapshot.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import time

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.eval.masking import seen_items_csr
from repro.models.base import Recommender

__all__ = ["SNAPSHOT_SCHEMA", "SnapshotManifest", "EmbeddingSnapshot",
           "export_snapshot", "load_snapshot"]

#: Bump when the on-disk layout changes incompatibly.
SNAPSHOT_SCHEMA = "bsl-serve-snapshot/v1"

_FILES = {
    "users": "user_embeddings.npy",
    "items": "item_embeddings.npy",
    "seen_indptr": "seen_indptr.npy",
    "seen_items": "seen_items.npy",
}
_MANIFEST = "manifest.json"


@dataclasses.dataclass(frozen=True)
class SnapshotManifest:
    """Identity card of one exported snapshot.

    ``version`` is a content hash over the embedding tables, the seen-set
    arrays and the identifying fields, so two snapshots with the same
    version are byte-identical for serving purposes — result caches key
    on it (see :class:`repro.serve.service.RecommendationService`).
    """

    schema: str
    version: str
    model: str
    model_class: str
    dim: int
    num_users: int
    num_items: int
    dataset: str
    scoring: str
    created_unix: float
    extra: dict = dataclasses.field(default_factory=dict)

    def to_json(self) -> str:
        """Serialize to the ``manifest.json`` on-disk representation."""
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SnapshotManifest":
        """Parse ``manifest.json`` text, rejecting unknown fields."""
        payload = json.loads(text)
        unknown = set(payload) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(f"manifest has unknown fields {sorted(unknown)}; "
                             f"written by a newer schema?")
        return cls(**payload)


def _content_version(users: np.ndarray, items: np.ndarray,
                     seen_indptr: np.ndarray, seen_items: np.ndarray,
                     identity: tuple) -> str:
    """Short content hash of everything that affects serving results."""
    digest = hashlib.sha256()
    digest.update(repr(identity).encode())
    for arr in (users, items, seen_indptr, seen_items):
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()[:16]


class EmbeddingSnapshot:
    """A loaded snapshot: manifest + (optionally memory-mapped) arrays.

    Parameters
    ----------
    manifest:
        Parsed :class:`SnapshotManifest`.
    users, items:
        ``(num_users, dim)`` / ``(num_items, dim)`` float64 tables with
        propagation already applied.
    seen_indptr, seen_items:
        CSR layout of each user's training interactions
        (``seen_items[seen_indptr[u]:seen_indptr[u + 1]]``).
    path:
        Directory the snapshot was loaded from, if any.
    """

    def __init__(self, manifest: SnapshotManifest, users: np.ndarray,
                 items: np.ndarray, seen_indptr: np.ndarray,
                 seen_items: np.ndarray, path: pathlib.Path | None = None):
        if users.shape != (manifest.num_users, manifest.dim):
            raise ValueError(f"user table shape {users.shape} does not match "
                             f"manifest ({manifest.num_users}, {manifest.dim})")
        if items.shape != (manifest.num_items, manifest.dim):
            raise ValueError(f"item table shape {items.shape} does not match "
                             f"manifest ({manifest.num_items}, {manifest.dim})")
        if len(seen_indptr) != manifest.num_users + 1:
            raise ValueError("seen_indptr length does not match num_users")
        # CSR consistency now, not an opaque IndexError at request time
        # (or a silent wrong-row mask for negative ids).
        if seen_indptr[0] != 0 or seen_indptr[-1] != len(seen_items):
            raise ValueError("seen_indptr does not span seen_items "
                             "(truncated snapshot?)")
        if not np.all(np.diff(seen_indptr) >= 0):
            raise ValueError("seen_indptr is not monotone (corrupted "
                             "snapshot?)")
        if len(seen_items) and (seen_items.min() < 0
                                or seen_items.max() >= manifest.num_items):
            raise ValueError("seen_items contains out-of-range item ids")
        self.manifest = manifest
        self.users = users
        self.items = items
        self.seen_indptr = seen_indptr
        self.seen_items = seen_items
        self.path = path

    @property
    def version(self) -> str:
        """Content-hash identity (cache key for downstream services)."""
        return self.manifest.version

    @property
    def scoring(self) -> str:
        """Test-time scoring function: ``inner``/``cosine``/``euclidean``."""
        return self.manifest.scoring

    def seen(self, user_id: int) -> np.ndarray:
        """Training items of one user (the filter-seen candidate mask)."""
        return np.asarray(
            self.seen_items[self.seen_indptr[user_id]:
                            self.seen_indptr[user_id + 1]])

    def recompute_version(self) -> str:
        """Re-hash the loaded arrays (integrity check against the manifest)."""
        m = self.manifest
        return _content_version(
            np.asarray(self.users), np.asarray(self.items),
            np.asarray(self.seen_indptr), np.asarray(self.seen_items),
            (m.schema, m.model_class, m.dim, m.num_users, m.num_items,
             m.scoring))

    def __repr__(self) -> str:
        m = self.manifest
        return (f"EmbeddingSnapshot(model={m.model!r}, version={m.version!r}, "
                f"users={m.num_users}, items={m.num_items}, dim={m.dim}, "
                f"scoring={m.scoring!r})")


def export_snapshot(model: Recommender, dataset: InteractionDataset,
                    out_dir, *, model_name: str | None = None,
                    extra: dict | None = None) -> EmbeddingSnapshot:
    """Freeze a trained model into a serving snapshot directory.

    Runs ``model.propagate()`` once in eval mode (so dropout and
    SSL perturbations are off, exactly like
    :meth:`~repro.models.base.Recommender.predict_scores`), persists the
    final tables plus the dataset's train-interaction CSR, and writes a
    versioned manifest.  Returns the loaded in-memory snapshot.

    Parameters
    ----------
    model:
        Any trained registry backbone.
    dataset:
        The training dataset — provides the seen-item sets used for
        ``filter_seen`` at request time.
    out_dir:
        Target directory (created if missing; files are overwritten).
    model_name:
        Registry name to record (defaults to the class name lowercased).
    extra:
        Free-form JSON-serializable metadata merged into the manifest.
    """
    if (model.num_users, model.num_items) != (dataset.num_users,
                                              dataset.num_items):
        raise ValueError(
            f"model is sized ({model.num_users}, {model.num_items}) but "
            f"dataset is ({dataset.num_users}, {dataset.num_items})")
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    was_training = model.training
    model.eval()
    try:
        users, items = model.embeddings()
    finally:
        if was_training:
            model.train()
    users = np.ascontiguousarray(users, dtype=np.float64)
    items = np.ascontiguousarray(items, dtype=np.float64)
    seen_indptr, seen_items = seen_items_csr(dataset.train_items_by_user)

    name = model_name or type(model).__name__.lower()
    identity = (SNAPSHOT_SCHEMA, type(model).__name__, model.dim,
                model.num_users, model.num_items, model.test_scoring)
    manifest = SnapshotManifest(
        schema=SNAPSHOT_SCHEMA,
        version=_content_version(users, items, seen_indptr, seen_items,
                                 identity),
        model=name,
        model_class=type(model).__name__,
        dim=model.dim,
        num_users=model.num_users,
        num_items=model.num_items,
        dataset=dataset.name,
        scoring=model.test_scoring,
        created_unix=time.time(),
        extra=dict(extra or {}))

    np.save(out_dir / _FILES["users"], users)
    np.save(out_dir / _FILES["items"], items)
    np.save(out_dir / _FILES["seen_indptr"], seen_indptr)
    np.save(out_dir / _FILES["seen_items"], seen_items)
    (out_dir / _MANIFEST).write_text(manifest.to_json() + "\n")
    return EmbeddingSnapshot(manifest, users, items, seen_indptr, seen_items,
                             path=out_dir)


def load_snapshot(path, *, mmap: bool = True,
                  verify: bool = False) -> EmbeddingSnapshot:
    """Open a snapshot directory written by :func:`export_snapshot`.

    Parameters
    ----------
    path:
        Snapshot directory.
    mmap:
        Memory-map the embedding tables read-only (the default) so many
        serving processes share one page cache; pass ``False`` to load
        plain in-memory copies.
    verify:
        Re-hash the arrays and fail loudly if the content does not match
        the manifest's ``version`` (detects truncated or edited files).
    """
    path = pathlib.Path(path)
    manifest_path = path / _MANIFEST
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no snapshot manifest at {manifest_path}")
    manifest = SnapshotManifest.from_json(manifest_path.read_text())
    if manifest.schema != SNAPSHOT_SCHEMA:
        raise ValueError(f"snapshot schema {manifest.schema!r} is not "
                         f"{SNAPSHOT_SCHEMA!r}")
    mmap_mode = "r" if mmap else None
    arrays = {key: np.load(path / fname, mmap_mode=mmap_mode,
                           allow_pickle=False)
              for key, fname in _FILES.items()}
    snapshot = EmbeddingSnapshot(manifest, arrays["users"], arrays["items"],
                                 arrays["seen_indptr"], arrays["seen_items"],
                                 path=path)
    if verify and snapshot.recompute_version() != manifest.version:
        raise ValueError(
            f"snapshot content hash does not match manifest version "
            f"{manifest.version!r}; files were modified after export")
    return snapshot
