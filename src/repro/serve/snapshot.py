"""Frozen embedding snapshots: the training → serving hand-off format.

A *snapshot* is a directory holding everything the online stack needs to
answer "what do we recommend to user ``u``?" without ever touching the
training graph again:

* ``user_embeddings.npy`` / ``item_embeddings.npy`` — the backbone's
  **final** embedding tables with graph propagation already applied
  (``model.propagate()`` in eval mode), stored as plain ``.npy`` so they
  can be memory-mapped read-only by any number of serving processes;
* ``seen_indptr.npy`` / ``seen_items.npy`` — the training interactions
  in CSR layout, consumed by :func:`repro.eval.masking.mask_seen_items`
  to filter already-seen items at request time;
* ``manifest.json`` — a versioned :class:`SnapshotManifest` recording
  the model, sizes, scoring function and a content hash, so a service
  can detect stale caches and refuse mismatched artifacts.

Because propagation is baked in at export time, serving cost is one
dense gather + matmul per request batch regardless of backbone depth —
a LightGCN-3 snapshot serves exactly as fast as an MF snapshot.

**Sharded snapshots.**  :func:`export_sharded_snapshot` writes the same
content horizontally partitioned for multi-process serving: a directory
of *user shards* (embedding rows + seen-item CSR for a subset of users)
and *item shards* (embedding rows for a subset of the catalogue), under
a content-hashed top-level ``shards.json``.  Users and items partition
independently (``partition_by`` ∈ ``user``/``item``/``both``) with
either ``contiguous`` range or ``hash`` (``id % n``) placement.  The
scatter-gather reader lives in :mod:`repro.serve.shard` /
:mod:`repro.serve.router`; the partitioning and merge contract is
documented in ``docs/sharding.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import re
import shutil
import tempfile
import time

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.eval.masking import seen_items_csr
from repro.models.base import Recommender

__all__ = ["SNAPSHOT_SCHEMA", "SHARD_SCHEMA", "SHARDED_SCHEMA",
           "SnapshotManifest", "ShardManifest", "ShardedManifest",
           "EmbeddingSnapshot", "SnapshotIntegrityError",
           "export_snapshot", "load_snapshot", "quarantine_snapshot",
           "partition_ids", "export_sharded_snapshot",
           "export_sharded_source_snapshot", "is_sharded_snapshot"]

#: Bump when the on-disk layout changes incompatibly.
SNAPSHOT_SCHEMA = "bsl-serve-snapshot/v1"

#: Schema of one shard directory's ``manifest.json``.
SHARD_SCHEMA = "bsl-serve-shard/v1"

#: Schema of a sharded snapshot's top-level ``shards.json``.
SHARDED_SCHEMA = "bsl-serve-sharded/v1"

#: Partitioning strategies accepted by :func:`partition_ids`.
PARTITION_STRATEGIES = ("contiguous", "hash")

_SHARDS_MANIFEST = "shards.json"

_FILES = {
    "users": "user_embeddings.npy",
    "items": "item_embeddings.npy",
    "seen_indptr": "seen_indptr.npy",
    "seen_items": "seen_items.npy",
}
_MANIFEST = "manifest.json"

#: staging-directory prefix of the crash-safe exporters
_STAGING_PREFIX = ".staging-"


class SnapshotIntegrityError(RuntimeError):
    """A snapshot failed its content-hash verify (or did not load).

    Raised by
    :meth:`repro.serve.service.RecommendationService.refresh_from_path`
    when the candidate snapshot is rejected: the service keeps serving
    its last-good version and, with quarantine enabled, the bad
    directory is moved aside (``quarantined_to``) so a retry loop does
    not keep re-reading the same damaged files.
    """

    def __init__(self, message: str, *, quarantined_to=None):
        super().__init__(message)
        self.quarantined_to = quarantined_to


def _staging_dir(out_dir: pathlib.Path) -> pathlib.Path:
    """Fresh staging directory *inside* ``out_dir`` (same filesystem, so
    every ``os.replace`` out of it is an atomic rename)."""
    return pathlib.Path(tempfile.mkdtemp(prefix=_STAGING_PREFIX,
                                         dir=out_dir))


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory tmp file + rename,
    so readers never observe a partially written file."""
    fd, tmp = tempfile.mkstemp(prefix=f".{path.name}.", dir=path.parent)
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        pathlib.Path(tmp).unlink(missing_ok=True)
        raise


@dataclasses.dataclass(frozen=True)
class SnapshotManifest:
    """Identity card of one exported snapshot.

    ``version`` is a content hash over the embedding tables, the seen-set
    arrays and the identifying fields, so two snapshots with the same
    version are byte-identical for serving purposes — result caches key
    on it (see :class:`repro.serve.service.RecommendationService`).
    """

    schema: str
    version: str
    model: str
    model_class: str
    dim: int
    num_users: int
    num_items: int
    dataset: str
    scoring: str
    created_unix: float
    extra: dict = dataclasses.field(default_factory=dict)

    def to_json(self) -> str:
        """Serialize to the ``manifest.json`` on-disk representation."""
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SnapshotManifest":
        """Parse ``manifest.json`` text, rejecting unknown fields."""
        payload = json.loads(text)
        unknown = set(payload) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(f"manifest has unknown fields {sorted(unknown)}; "
                             f"written by a newer schema?")
        return cls(**payload)


def _content_version(users: np.ndarray, items: np.ndarray,
                     seen_indptr: np.ndarray, seen_items: np.ndarray,
                     identity: tuple) -> str:
    """Short content hash of everything that affects serving results."""
    digest = hashlib.sha256()
    digest.update(repr(identity).encode())
    for arr in (users, items, seen_indptr, seen_items):
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()[:16]


class EmbeddingSnapshot:
    """A loaded snapshot: manifest + (optionally memory-mapped) arrays.

    Parameters
    ----------
    manifest:
        Parsed :class:`SnapshotManifest`.
    users, items:
        ``(num_users, dim)`` / ``(num_items, dim)`` float64 tables with
        propagation already applied.
    seen_indptr, seen_items:
        CSR layout of each user's training interactions
        (``seen_items[seen_indptr[u]:seen_indptr[u + 1]]``).
    path:
        Directory the snapshot was loaded from, if any.
    """

    def __init__(self, manifest: SnapshotManifest, users: np.ndarray,
                 items: np.ndarray, seen_indptr: np.ndarray,
                 seen_items: np.ndarray, path: pathlib.Path | None = None):
        if users.shape != (manifest.num_users, manifest.dim):
            raise ValueError(f"user table shape {users.shape} does not match "
                             f"manifest ({manifest.num_users}, {manifest.dim})")
        if items.shape != (manifest.num_items, manifest.dim):
            raise ValueError(f"item table shape {items.shape} does not match "
                             f"manifest ({manifest.num_items}, {manifest.dim})")
        if len(seen_indptr) != manifest.num_users + 1:
            raise ValueError("seen_indptr length does not match num_users")
        # CSR consistency now, not an opaque IndexError at request time
        # (or a silent wrong-row mask for negative ids).
        if seen_indptr[0] != 0 or seen_indptr[-1] != len(seen_items):
            raise ValueError("seen_indptr does not span seen_items "
                             "(truncated snapshot?)")
        if not np.all(np.diff(seen_indptr) >= 0):
            raise ValueError("seen_indptr is not monotone (corrupted "
                             "snapshot?)")
        if len(seen_items) and (seen_items.min() < 0
                                or seen_items.max() >= manifest.num_items):
            raise ValueError("seen_items contains out-of-range item ids")
        self.manifest = manifest
        self.users = users
        self.items = items
        self.seen_indptr = seen_indptr
        self.seen_items = seen_items
        self.path = path

    @property
    def version(self) -> str:
        """Content-hash identity (cache key for downstream services)."""
        return self.manifest.version

    @property
    def scoring(self) -> str:
        """Test-time scoring function: ``inner``/``cosine``/``euclidean``."""
        return self.manifest.scoring

    def seen(self, user_id: int) -> np.ndarray:
        """Training items of one user (the filter-seen candidate mask)."""
        return np.asarray(
            self.seen_items[self.seen_indptr[user_id]:
                            self.seen_indptr[user_id + 1]])

    def recompute_version(self) -> str:
        """Re-hash the loaded arrays (integrity check against the manifest)."""
        m = self.manifest
        return _content_version(
            np.asarray(self.users), np.asarray(self.items),
            np.asarray(self.seen_indptr), np.asarray(self.seen_items),
            (m.schema, m.model_class, m.dim, m.num_users, m.num_items,
             m.scoring))

    def __repr__(self) -> str:
        m = self.manifest
        return (f"EmbeddingSnapshot(model={m.model!r}, version={m.version!r}, "
                f"users={m.num_users}, items={m.num_items}, dim={m.dim}, "
                f"scoring={m.scoring!r})")


def _frozen_tables(model: Recommender) -> tuple[np.ndarray, np.ndarray]:
    """Final (user, item) float64 tables with propagation applied.

    Runs ``model.embeddings()`` once in eval mode (dropout and SSL
    perturbations off, exactly like ``predict_scores``).
    """
    was_training = model.training
    model.eval()
    try:
        users, items = model.embeddings()
    finally:
        if was_training:
            model.train()
    return (np.ascontiguousarray(users, dtype=np.float64),
            np.ascontiguousarray(items, dtype=np.float64))


def _write_arrays(out_dir: pathlib.Path, manifest: SnapshotManifest,
                  users: np.ndarray, items: np.ndarray,
                  seen_indptr: np.ndarray, seen_items: np.ndarray) -> None:
    """Persist the four snapshot arrays plus the manifest, crash-safely.

    The single write path shared by :func:`export_snapshot` and the
    delta-replay exporter (:func:`repro.serve.delta.export_state`), so
    "replayed chain == fresh export" can be checked byte for byte.

    **Crash safety.**  Every file is fully written into a staging
    directory on the same filesystem first, then published with
    ``os.replace`` — the manifest **last**, as the commit point.  A
    crash while staging leaves the previous export untouched (the
    orphaned staging directory is swept by the next export); a crash
    mid-publish can interleave old and new *complete* files, a torn
    state ``load_snapshot(verify=True)`` rejects by content hash — a
    truncated, unparseable array can never be published.  Exporting
    into a fresh directory (the usual refresh pattern) is therefore
    fully atomic: the snapshot exists only once its manifest does.
    """
    staging = _staging_dir(out_dir)
    try:
        np.save(staging / _FILES["users"], users)
        np.save(staging / _FILES["items"], items)
        np.save(staging / _FILES["seen_indptr"], seen_indptr)
        np.save(staging / _FILES["seen_items"], seen_items)
        (staging / _MANIFEST).write_text(manifest.to_json() + "\n")
        for fname in _FILES.values():
            os.replace(staging / fname, out_dir / fname)
        os.replace(staging / _MANIFEST, out_dir / _MANIFEST)
    finally:
        shutil.rmtree(staging, ignore_errors=True)


def export_snapshot(model: Recommender, dataset: InteractionDataset,
                    out_dir, *, model_name: str | None = None,
                    extra: dict | None = None,
                    created_unix: float | None = None) -> EmbeddingSnapshot:
    """Freeze a trained model into a serving snapshot directory.

    Runs ``model.propagate()`` once in eval mode (so dropout and
    SSL perturbations are off, exactly like
    :meth:`~repro.models.base.Recommender.predict_scores`), persists the
    final tables plus the dataset's train-interaction CSR, and writes a
    versioned manifest.  Returns the loaded in-memory snapshot.

    Parameters
    ----------
    model:
        Any trained registry backbone.
    dataset:
        The training dataset — provides the seen-item sets used for
        ``filter_seen`` at request time.
    out_dir:
        Target directory (created if missing; files are overwritten).
    model_name:
        Registry name to record (defaults to the class name lowercased).
    extra:
        Free-form JSON-serializable metadata merged into the manifest.
    """
    if (model.num_users, model.num_items) != (dataset.num_users,
                                              dataset.num_items):
        raise ValueError(
            f"model is sized ({model.num_users}, {model.num_items}) but "
            f"dataset is ({dataset.num_users}, {dataset.num_items})")
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    # A prior sharded export into this directory must not survive: its
    # shards.json would make `recommend` route to the stale sharded
    # model instead of this fresh export.
    _remove_stale_layout(out_dir, for_sharded=False)

    users, items = _frozen_tables(model)
    seen_indptr, seen_items = seen_items_csr(dataset.train_items_by_user)

    name = model_name or type(model).__name__.lower()
    identity = (SNAPSHOT_SCHEMA, type(model).__name__, model.dim,
                model.num_users, model.num_items, model.test_scoring)
    manifest = SnapshotManifest(
        schema=SNAPSHOT_SCHEMA,
        version=_content_version(users, items, seen_indptr, seen_items,
                                 identity),
        model=name,
        model_class=type(model).__name__,
        dim=model.dim,
        num_users=model.num_users,
        num_items=model.num_items,
        dataset=dataset.name,
        scoring=model.test_scoring,
        created_unix=time.time() if created_unix is None else created_unix,
        extra=dict(extra or {}))

    _write_arrays(out_dir, manifest, users, items, seen_indptr, seen_items)
    return EmbeddingSnapshot(manifest, users, items, seen_indptr, seen_items,
                             path=out_dir)


def load_snapshot(path, *, mmap: bool = True,
                  verify: bool = False) -> EmbeddingSnapshot:
    """Open a snapshot directory written by :func:`export_snapshot`.

    Parameters
    ----------
    path:
        Snapshot directory.
    mmap:
        Memory-map the embedding tables read-only (the default) so many
        serving processes share one page cache; pass ``False`` to load
        plain in-memory copies.
    verify:
        Re-hash the arrays and fail loudly if the content does not match
        the manifest's ``version`` (detects truncated or edited files).
    """
    path = pathlib.Path(path)
    manifest_path = path / _MANIFEST
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no snapshot manifest at {manifest_path}")
    manifest = SnapshotManifest.from_json(manifest_path.read_text())
    if manifest.schema != SNAPSHOT_SCHEMA:
        raise ValueError(f"snapshot schema {manifest.schema!r} is not "
                         f"{SNAPSHOT_SCHEMA!r}")
    mmap_mode = "r" if mmap else None
    arrays = {key: np.load(path / fname, mmap_mode=mmap_mode,
                           allow_pickle=False)
              for key, fname in _FILES.items()}
    snapshot = EmbeddingSnapshot(manifest, arrays["users"], arrays["items"],
                                 arrays["seen_indptr"], arrays["seen_items"],
                                 path=path)
    if verify and snapshot.recompute_version() != manifest.version:
        raise ValueError(
            f"snapshot content hash does not match manifest version "
            f"{manifest.version!r}; files were modified after export")
    return snapshot


# ----------------------------------------------------------------------
# Sharded snapshots
# ----------------------------------------------------------------------
def partition_ids(n: int, num_shards: int,
                  strategy: str = "contiguous") -> list[np.ndarray]:
    """Split ``arange(n)`` into ``num_shards`` ascending id arrays.

    ``contiguous`` assigns ranges (``np.array_split`` boundaries);
    ``hash`` assigns by residue (shard ``s`` owns ``id % num_shards ==
    s``).  Every shard's array is sorted ascending and the union covers
    ``[0, n)`` exactly — the invariant the scatter-gather router's
    global/local id mapping relies on.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    if num_shards > n:
        raise ValueError(f"cannot cut {n} ids into {num_shards} non-empty "
                         f"shards")
    if strategy == "contiguous":
        return np.array_split(np.arange(n, dtype=np.int64), num_shards)
    if strategy == "hash":
        return [np.arange(s, n, num_shards, dtype=np.int64)
                for s in range(num_shards)]
    raise ValueError(f"unknown partition strategy {strategy!r}; "
                     f"available: {PARTITION_STRATEGIES}")


@dataclasses.dataclass(frozen=True)
class ShardManifest:
    """Identity card of one shard directory inside a sharded snapshot.

    ``version`` is a content hash over the shard's arrays plus its
    identifying fields; the top-level :class:`ShardedManifest` hashes
    these child versions, so tampering with any shard invalidates the
    whole snapshot under ``verify=True``.
    """

    schema: str
    version: str
    kind: str
    index: int
    num_shards: int
    strategy: str
    count: int
    dim: int
    scoring: str
    num_users: int
    num_items: int

    def to_json(self) -> str:
        """Serialize to the shard's ``manifest.json`` representation."""
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ShardManifest":
        """Parse a shard ``manifest.json``, rejecting unknown fields."""
        payload = json.loads(text)
        unknown = set(payload) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(f"shard manifest has unknown fields "
                             f"{sorted(unknown)}; written by a newer schema?")
        return cls(**payload)


@dataclasses.dataclass(frozen=True)
class ShardedManifest:
    """Top-level ``shards.json`` of a sharded snapshot directory.

    ``user_shards`` / ``item_shards`` list ``{"path", "version",
    "count"}`` entries in shard order; ``version`` is a content hash
    over the child shard versions and the identity fields, so it plays
    the same cache-key role as an unsharded snapshot's version.
    """

    schema: str
    version: str
    model: str
    model_class: str
    dim: int
    num_users: int
    num_items: int
    dataset: str
    scoring: str
    partition_by: str
    strategy: str
    num_user_shards: int
    num_item_shards: int
    user_shards: list
    item_shards: list
    created_unix: float
    extra: dict = dataclasses.field(default_factory=dict)

    def to_json(self) -> str:
        """Serialize to the on-disk ``shards.json`` representation."""
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ShardedManifest":
        """Parse ``shards.json`` text, rejecting unknown fields."""
        payload = json.loads(text)
        unknown = set(payload) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(f"shards.json has unknown fields "
                             f"{sorted(unknown)}; written by a newer schema?")
        return cls(**payload)


#: shard subdirectory naming used by the sharded exporter/loader
_SHARD_DIR = re.compile(r"^(user|item)-shard-\d{2}$")


def _remove_stale_layout(out_dir: pathlib.Path, *,
                         for_sharded: bool) -> None:
    """Drop stale artifacts before re-exporting into a directory.

    Exports overwrite in place, but the directory must never end up
    satisfying both loaders at once — an unsharded export leaving a
    previous ``shards.json`` behind (or vice versa) would make
    ``recommend`` silently serve the stale model.  Old shard
    subdirectories always go (a re-export with a smaller shard count
    must not leave orphans); they are only removed when they match the
    exporter's naming pattern *and* carry a shard manifest, so
    unrelated user files are never touched.  Orphaned staging
    directories from a crashed export are swept here too (they carry
    the exporter's own prefix, so they cannot be user files).
    """
    (out_dir / _SHARDS_MANIFEST).unlink(missing_ok=True)
    for child in out_dir.iterdir():
        if child.is_dir() and child.name.startswith(_STAGING_PREFIX):
            shutil.rmtree(child, ignore_errors=True)
        elif (child.is_dir() and _SHARD_DIR.match(child.name)
                and (child / _MANIFEST).is_file()):
            shutil.rmtree(child)
    if for_sharded:
        (out_dir / _MANIFEST).unlink(missing_ok=True)
        for fname in _FILES.values():
            (out_dir / fname).unlink(missing_ok=True)


def _sharded_version(identity: tuple, shard_versions: list[str]) -> str:
    """Top-level content hash from the child shard versions."""
    digest = hashlib.sha256()
    digest.update(repr(identity).encode())
    for version in shard_versions:
        digest.update(version.encode())
    return digest.hexdigest()[:16]


def _csr_rows(indptr: np.ndarray, items: np.ndarray,
              ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Gather the CSR rows ``ids`` of a global ``(indptr, items)`` layout.

    Returns a rebased ``(indptr, items)`` pair — byte-identical to
    ``seen_items_csr([items_by_user[u] for u in ids])`` over the same
    per-user lists, but driven by the flat CSR an
    :class:`~repro.data.source.InteractionSource` provides (``items``
    may be a memmap; only the gathered segments are read).
    """
    ids = np.asarray(ids, dtype=np.int64)
    counts = indptr[ids + 1] - indptr[ids]
    out_indptr = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)])
    total = int(out_indptr[-1])
    if total == 0:
        return out_indptr, np.empty(0, dtype=np.int64)
    flat = (np.repeat(indptr[ids] - out_indptr[:-1], counts)
            + np.arange(total, dtype=np.int64))
    return out_indptr, np.asarray(items[flat], dtype=np.int64)


def _write_user_shard(out_dir: pathlib.Path, index: int, ids: np.ndarray,
                      users: np.ndarray, seen_csr: tuple,
                      base: dict) -> dict:
    """Persist one user shard directory; returns its shards.json entry.

    Staged and published with one directory rename: the shard either
    exists complete or not at all (the stale previous shard was removed
    by ``_remove_stale_layout`` before any writing began).
    """
    shard_dir = out_dir / f"user-shard-{index:02d}"
    rows = np.ascontiguousarray(users[ids])
    indptr, seen = _csr_rows(seen_csr[0], seen_csr[1], ids)
    version = _content_version(
        rows, ids, indptr, seen,
        (SHARD_SCHEMA, "user", index, base["num_shards"], base["strategy"]))
    manifest = ShardManifest(schema=SHARD_SCHEMA, version=version,
                             kind="user", index=index, count=len(ids),
                             **base)
    staging = _staging_dir(out_dir)
    try:
        np.save(staging / "user_embeddings.npy", rows)
        np.save(staging / "user_ids.npy", ids)
        np.save(staging / "seen_indptr.npy", indptr)
        np.save(staging / "seen_items.npy", seen)
        (staging / _MANIFEST).write_text(manifest.to_json() + "\n")
        if shard_dir.exists():
            shutil.rmtree(shard_dir)
        os.replace(staging, shard_dir)
    finally:
        shutil.rmtree(staging, ignore_errors=True)
    return {"path": shard_dir.name, "version": version, "count": len(ids)}


def _write_item_shard(out_dir: pathlib.Path, index: int, ids: np.ndarray,
                      items: np.ndarray, base: dict) -> dict:
    """Persist one item shard directory; returns its shards.json entry.

    Staged and published with one directory rename, exactly like
    :func:`_write_user_shard`.
    """
    shard_dir = out_dir / f"item-shard-{index:02d}"
    rows = np.ascontiguousarray(items[ids])
    version = _content_version(
        rows, ids, np.empty(0, np.int64), np.empty(0, np.int64),
        (SHARD_SCHEMA, "item", index, base["num_shards"], base["strategy"]))
    manifest = ShardManifest(schema=SHARD_SCHEMA, version=version,
                             kind="item", index=index, count=len(ids),
                             **base)
    staging = _staging_dir(out_dir)
    try:
        np.save(staging / "item_embeddings.npy", rows)
        np.save(staging / "item_ids.npy", ids)
        (staging / _MANIFEST).write_text(manifest.to_json() + "\n")
        if shard_dir.exists():
            shutil.rmtree(shard_dir)
        os.replace(staging, shard_dir)
    finally:
        shutil.rmtree(staging, ignore_errors=True)
    return {"path": shard_dir.name, "version": version, "count": len(ids)}


def _export_sharded_tables(out_dir, users, items, seen_csr, *,
                           model_name: str, model_class: str, dim: int,
                           num_users: int, num_items: int,
                           dataset_name: str, scoring: str, shards: int,
                           partition_by: str, strategy: str,
                           extra: dict | None,
                           created_unix: float | None):
    """Shared sharded-export core: tables + seen CSR → shard directories.

    Both the model-level :func:`export_sharded_snapshot` and the
    out-of-core :func:`export_sharded_source_snapshot` funnel through
    here, so identical inputs produce byte-identical shard files and
    manifests regardless of which front door was used (pin
    ``created_unix`` to make the manifests comparable too).
    """
    if partition_by not in ("user", "item", "both"):
        raise ValueError(f"partition_by must be user/item/both, "
                         f"got {partition_by!r}")
    num_user_shards = shards if partition_by in ("user", "both") else 1
    num_item_shards = shards if partition_by in ("item", "both") else 1

    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    _remove_stale_layout(out_dir, for_sharded=True)

    base = {"dim": dim, "scoring": scoring,
            "num_users": num_users, "num_items": num_items,
            "strategy": strategy}
    user_entries = [
        _write_user_shard(out_dir, i, ids, users, seen_csr,
                          {**base, "num_shards": num_user_shards})
        for i, ids in enumerate(partition_ids(num_users,
                                              num_user_shards, strategy))]
    item_entries = [
        _write_item_shard(out_dir, i, ids, items,
                          {**base, "num_shards": num_item_shards})
        for i, ids in enumerate(partition_ids(num_items,
                                              num_item_shards, strategy))]

    identity = (SHARDED_SCHEMA, model_class, dim,
                num_users, num_items, scoring,
                partition_by, strategy, num_user_shards, num_item_shards)
    manifest = ShardedManifest(
        schema=SHARDED_SCHEMA,
        version=_sharded_version(
            identity, [e["version"] for e in user_entries + item_entries]),
        model=model_name,
        model_class=model_class,
        dim=dim,
        num_users=num_users,
        num_items=num_items,
        dataset=dataset_name,
        scoring=scoring,
        partition_by=partition_by,
        strategy=strategy,
        num_user_shards=num_user_shards,
        num_item_shards=num_item_shards,
        user_shards=user_entries,
        item_shards=item_entries,
        created_unix=time.time() if created_unix is None else created_unix,
        extra=dict(extra or {}))
    # shards.json is the commit point: until this rename lands, the
    # directory does not parse as a sharded snapshot at all.
    _atomic_write_text(out_dir / _SHARDS_MANIFEST, manifest.to_json() + "\n")

    from repro.serve.shard import load_sharded_snapshot
    return load_sharded_snapshot(out_dir)


def export_sharded_snapshot(model: Recommender, dataset: InteractionDataset,
                            out_dir, *, shards: int,
                            partition_by: str = "both",
                            strategy: str = "contiguous",
                            model_name: str | None = None,
                            extra: dict | None = None,
                            created_unix: float | None = None):
    """Freeze a trained model into a horizontally partitioned snapshot.

    Writes ``shards`` user-shard directories and/or ``shards``
    item-shard directories (per ``partition_by``) under ``out_dir``,
    plus a content-hashed top-level ``shards.json``.  The embedding
    values, seen-item sets and manifest identity are exactly those an
    unsharded :func:`export_snapshot` of the same model would produce —
    only the placement differs — which is what lets the scatter-gather
    router reproduce the unsharded rankings bit for bit.

    Parameters
    ----------
    model, dataset, model_name, extra:
        As in :func:`export_snapshot`.
    out_dir:
        Target directory (created if missing; files are overwritten).
    shards:
        Number of partitions along each sharded axis.
    partition_by:
        ``"user"`` shards only the user side, ``"item"`` only the item
        side, ``"both"`` (default) shards both; the un-sharded side is
        stored as a single shard.
    strategy:
        ``"contiguous"`` or ``"hash"`` (see :func:`partition_ids`).
    created_unix:
        Export timestamp recorded in ``shards.json`` (defaults to now);
        pin it when byte-comparing two exports.

    Returns the loaded
    :class:`~repro.serve.shard.ShardedSnapshot`.
    """
    if (model.num_users, model.num_items) != (dataset.num_users,
                                              dataset.num_items):
        raise ValueError(
            f"model is sized ({model.num_users}, {model.num_items}) but "
            f"dataset is ({dataset.num_users}, {dataset.num_items})")
    users, items = _frozen_tables(model)
    seen_csr = seen_items_csr(dataset.train_items_by_user)
    return _export_sharded_tables(
        out_dir, users, items, seen_csr,
        model_name=model_name or type(model).__name__.lower(),
        model_class=type(model).__name__, dim=model.dim,
        num_users=model.num_users, num_items=model.num_items,
        dataset_name=dataset.name, scoring=model.test_scoring,
        shards=shards, partition_by=partition_by, strategy=strategy,
        extra=extra, created_unix=created_unix)


def export_sharded_source_snapshot(users, items, source, out_dir, *,
                                   shards: int,
                                   partition_by: str = "both",
                                   strategy: str = "contiguous",
                                   model_name: str = "mf",
                                   model_class: str = "MF",
                                   scoring: str = "cosine",
                                   extra: dict | None = None,
                                   created_unix: float | None = None):
    """Sharded export straight from embedding tables + interaction source.

    The out-of-core path: ``users`` / ``items`` are typically read-only
    memmaps of on-disk tables (:func:`repro.train.outofcore.open_mmap_mf`
    at ``mode="r"`` exposes them as ``model.*_embedding.weight.data``)
    and ``source`` an mmap-backed
    :class:`~repro.data.source.ShardedInteractionSource` providing the
    seen-item CSR — no dense intermediate table or per-user Python list
    is ever materialized; each shard reads only its own row block.
    Given equal table bytes and interactions, the output is
    byte-identical to :func:`export_sharded_snapshot` of the equivalent
    in-memory model/dataset (``created_unix`` pinned), because both
    funnel through the same write core.
    """
    users = np.asarray(users)
    items = np.asarray(items)
    if users.ndim != 2 or items.ndim != 2 or users.shape[1] != items.shape[1]:
        raise ValueError(f"malformed tables {users.shape} / {items.shape}")
    if users.shape[0] != source.num_users \
            or items.shape[0] != source.num_items:
        raise ValueError(
            f"tables are sized ({users.shape[0]}, {items.shape[0]}) but "
            f"source is ({source.num_users}, {source.num_items})")
    return _export_sharded_tables(
        out_dir, users, items, source.train_csr(),
        model_name=model_name, model_class=model_class,
        dim=int(users.shape[1]), num_users=source.num_users,
        num_items=source.num_items, dataset_name=source.name,
        scoring=scoring, shards=shards, partition_by=partition_by,
        strategy=strategy, extra=extra, created_unix=created_unix)


def is_sharded_snapshot(path) -> bool:
    """True if ``path`` holds a sharded snapshot (has a ``shards.json``)."""
    return (pathlib.Path(path) / _SHARDS_MANIFEST).is_file()


def quarantine_snapshot(path) -> pathlib.Path:
    """Move a damaged snapshot directory aside; returns the new path.

    Renames ``path`` to ``<path>.quarantined`` (suffixing ``-2``,
    ``-3``, … if earlier quarantines exist), so a refresh retry loop
    stops re-reading the same corrupt files while an operator can still
    inspect them.  The rename is a single ``os.replace``-free
    ``os.rename`` into a fresh name — never over existing data.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise FileNotFoundError(f"nothing to quarantine at {path}")
    target = path.with_name(path.name + ".quarantined")
    suffix = 2
    while target.exists():
        target = path.with_name(f"{path.name}.quarantined-{suffix}")
        suffix += 1
    os.rename(path, target)
    return target
