"""Delta snapshots: incremental, hash-chained updates to a live catalogue.

A full :mod:`repro.serve.snapshot` export freezes the whole model; this
module makes the frozen artifact *mutable without rebuilds*.  The pieces:

* :class:`LiveState` — the authoritative mutable state, keyed by
  **stable ids** (a deleted row never renumbers its neighbours, so
  ``delete(u)`` followed by ``upsert(u)`` is exactly ``upsert(u)``).
  Exporting a state lays rows out densely in ascending stable-id order
  and records the id maps in ``manifest.extra["live"]`` (omitted when
  ids are the identity, so plain snapshots are unchanged on disk).
* **Delta directories** (``bsl-serve-delta/v1``) — row upserts/deletes
  written against a base snapshot version.  Each delta's manifest binds
  ``base_version`` → ``new_version`` and carries a content hash over its
  op arrays *and* both chain endpoints, so a tampered file, an edited
  manifest, or a re-based delta all fail verification loudly.
* :func:`apply_deltas` — replays a chain onto a base snapshot and
  produces a snapshot **bit-identical** to a fresh
  :func:`export_state` of the final state (the shared write path in
  :mod:`repro.serve.snapshot` guarantees it; ``created_unix`` is the
  only wall-clock input and is parameterized for exactly this reason).
* :func:`item_transition` — the dense-id transition map between two
  snapshot generations, consumed by the incremental IVF maintenance in
  :mod:`repro.ann.ivf` (posting-list remaps + insertions keyed to the
  delta rows).

Apply order inside one delta is fixed: item deletes (scrubbing the item
from every seen list), user deletes, item upserts, user upserts (row
and seen list replaced atomically; the seen list may reference items
upserted by the same delta).  Deleting a missing id is an error;
upserting an unknown id creates it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import shutil
import time

import numpy as np

from repro.eval.masking import seen_items_csr
from repro.serve.snapshot import (_FILES, _MANIFEST, SNAPSHOT_SCHEMA,
                                  EmbeddingSnapshot, SnapshotManifest,
                                  _content_version, _remove_stale_layout,
                                  _staging_dir, _write_arrays)

__all__ = ["DELTA_SCHEMA", "DeltaManifest", "DeltaOps", "Delta",
           "LiveState", "diff_states", "write_delta", "export_delta",
           "load_delta", "is_delta", "replay_deltas", "apply_deltas",
           "snapshot_from_state", "export_state", "live_user_ids",
           "live_item_ids", "item_transition"]

#: Bump when the delta on-disk layout changes incompatibly.
DELTA_SCHEMA = "bsl-serve-delta/v1"

#: op-array attribute -> file name inside a delta directory (fixed
#: order: the content hash folds the arrays in this sequence).
_DELTA_FILES = {
    "user_upsert_ids": "user_upsert_ids.npy",
    "user_upsert_rows": "user_upsert_rows.npy",
    "user_seen_indptr": "user_seen_indptr.npy",
    "user_seen_items": "user_seen_items.npy",
    "item_upsert_ids": "item_upsert_ids.npy",
    "item_upsert_rows": "item_upsert_rows.npy",
    "user_delete_ids": "user_delete_ids.npy",
    "item_delete_ids": "item_delete_ids.npy",
}


@dataclasses.dataclass(frozen=True)
class DeltaManifest:
    """Identity card of one delta directory.

    ``version`` is a content hash over the op arrays *and* the
    ``base_version``/``new_version`` endpoints, so a delta cannot be
    silently re-pointed at a different base, and replaying a chain with
    ``verify=True`` detects any edited array file.
    """

    schema: str
    version: str
    base_version: str
    new_version: str
    model_class: str
    dim: int
    scoring: str
    user_upserts: int
    user_deletes: int
    item_upserts: int
    item_deletes: int

    def to_json(self) -> str:
        """Serialize to the delta's ``manifest.json`` representation."""
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DeltaManifest":
        """Parse a delta ``manifest.json``, rejecting unknown fields."""
        payload = json.loads(text)
        unknown = set(payload) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(f"delta manifest has unknown fields "
                             f"{sorted(unknown)}; written by a newer schema?")
        return cls(**payload)


def _delta_version(identity: tuple, arrays) -> str:
    """Short content hash over a delta's identity and op arrays."""
    digest = hashlib.sha256()
    digest.update(repr(identity).encode())
    for arr in arrays:
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()[:16]


def _ids_array(values) -> np.ndarray:
    """Coerce to a 1-D strictly-ascending int64 id array."""
    ids = np.asarray(values, dtype=np.int64).reshape(-1)
    if len(ids) > 1 and not np.all(np.diff(ids) > 0):
        raise ValueError("delta id arrays must be strictly ascending "
                         "(sorted, unique)")
    return ids


@dataclasses.dataclass(frozen=True)
class DeltaOps:
    """The raw operations of one delta, as dense arrays.

    Upsert ids are stable ids (sorted ascending, unique per array);
    ``user_upsert_rows[i]`` replaces user ``user_upsert_ids[i]`` and
    ``user_seen_items[user_seen_indptr[i]:user_seen_indptr[i + 1]]`` is
    that user's **complete** new seen list (stable item ids, order
    preserved).  Deletes and upserts may overlap: deletes always apply
    first, so an id in both is simply replaced.
    """

    user_upsert_ids: np.ndarray
    user_upsert_rows: np.ndarray
    user_seen_indptr: np.ndarray
    user_seen_items: np.ndarray
    item_upsert_ids: np.ndarray
    item_upsert_rows: np.ndarray
    user_delete_ids: np.ndarray
    item_delete_ids: np.ndarray

    @classmethod
    def empty(cls, dim: int) -> "DeltaOps":
        """The no-op delta for tables of width ``dim``."""
        none = np.empty(0, dtype=np.int64)
        return cls(user_upsert_ids=none,
                   user_upsert_rows=np.empty((0, dim), dtype=np.float64),
                   user_seen_indptr=np.zeros(1, dtype=np.int64),
                   user_seen_items=none,
                   item_upsert_ids=none,
                   item_upsert_rows=np.empty((0, dim), dtype=np.float64),
                   user_delete_ids=none, item_delete_ids=none)

    def validate(self, dim: int) -> None:
        """Check shapes and orderings; raises ``ValueError`` on problems."""
        for name in ("user_upsert_ids", "item_upsert_ids",
                     "user_delete_ids", "item_delete_ids"):
            _ids_array(getattr(self, name))
        for ids, rows, what in ((self.user_upsert_ids, self.user_upsert_rows,
                                 "user"),
                                (self.item_upsert_ids, self.item_upsert_rows,
                                 "item")):
            if rows.shape != (len(ids), dim):
                raise ValueError(f"{what} upsert rows have shape "
                                 f"{rows.shape}, expected ({len(ids)}, {dim})")
        indptr = self.user_seen_indptr
        if (len(indptr) != len(self.user_upsert_ids) + 1 or indptr[0] != 0
                or indptr[-1] != len(self.user_seen_items)
                or not np.all(np.diff(indptr) >= 0)):
            raise ValueError("user_seen_indptr does not span user_seen_items")

    def arrays(self) -> list[np.ndarray]:
        """The op arrays in the canonical (hash) order."""
        return [np.asarray(getattr(self, name)) for name in _DELTA_FILES]

    def seen_of(self, i: int) -> np.ndarray:
        """New seen list (stable item ids) of the ``i``-th upserted user."""
        return np.asarray(self.user_seen_items[
            self.user_seen_indptr[i]:self.user_seen_indptr[i + 1]])

    @property
    def counts(self) -> dict:
        """Op counts, in manifest field order."""
        return {"user_upserts": len(self.user_upsert_ids),
                "user_deletes": len(self.user_delete_ids),
                "item_upserts": len(self.item_upsert_ids),
                "item_deletes": len(self.item_delete_ids)}


@dataclasses.dataclass(frozen=True)
class Delta:
    """One loaded (or freshly written) delta: manifest + op arrays."""

    manifest: DeltaManifest
    ops: DeltaOps
    path: pathlib.Path | None = None

    def recompute_version(self) -> str:
        """Re-hash the op arrays (integrity check against the manifest)."""
        m = self.manifest
        return _delta_version(
            (m.schema, m.model_class, m.dim, m.scoring, m.base_version,
             m.new_version), self.ops.arrays())


class LiveState:
    """Mutable serving state keyed by stable ids.

    The in-memory form deltas are diffed against and applied to.  Rows
    live in plain dicts — ``users[uid]`` / ``items[iid]`` are ``(dim,)``
    float64 rows, ``seen[uid]`` is an int64 array of stable item ids in
    insertion order — so deletions never renumber surviving rows.
    Mutators treat row arrays as immutable (they replace, never write
    in place), which is what makes :meth:`copy` cheap and safe.
    """

    def __init__(self, *, model: str, model_class: str, dim: int,
                 dataset: str, scoring: str, users: dict, items: dict,
                 seen: dict, extra: dict | None = None):
        if set(users) != set(seen):
            raise ValueError("users and seen must be keyed by the same ids")
        self.model = model
        self.model_class = model_class
        self.dim = int(dim)
        self.dataset = dataset
        self.scoring = scoring
        self.users = users
        self.items = items
        self.seen = seen
        self.extra = dict(extra or {})

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(cls, snapshot: EmbeddingSnapshot) -> "LiveState":
        """Thaw a (loaded) snapshot back into mutable stable-id form."""
        m = snapshot.manifest
        extra = dict(m.extra)
        live = extra.pop("live", None) or {}
        user_ids = _ids_array(live.get("user_ids", np.arange(m.num_users)))
        item_ids = _ids_array(live.get("item_ids", np.arange(m.num_items)))
        if len(user_ids) != m.num_users or len(item_ids) != m.num_items:
            raise ValueError("live id maps do not match the manifest sizes")
        users = {int(uid): np.array(snapshot.users[i], dtype=np.float64)
                 for i, uid in enumerate(user_ids)}
        items = {int(iid): np.array(snapshot.items[i], dtype=np.float64)
                 for i, iid in enumerate(item_ids)}
        seen = {int(uid): item_ids[snapshot.seen(i)]
                for i, uid in enumerate(user_ids)}
        return cls(model=m.model, model_class=m.model_class, dim=m.dim,
                   dataset=m.dataset, scoring=m.scoring, users=users,
                   items=items, seen=seen, extra=extra)

    def copy(self) -> "LiveState":
        """Independent state sharing the (immutable) row arrays."""
        return LiveState(model=self.model, model_class=self.model_class,
                         dim=self.dim, dataset=self.dataset,
                         scoring=self.scoring, users=dict(self.users),
                         items=dict(self.items), seen=dict(self.seen),
                         extra=dict(self.extra))

    # ------------------------------------------------------------------
    # Mutators (stable-id semantics)
    # ------------------------------------------------------------------
    def _row(self, row, what: str) -> np.ndarray:
        row = np.ascontiguousarray(row, dtype=np.float64).reshape(-1)
        if row.shape != (self.dim,):
            raise ValueError(f"{what} row has shape {row.shape}, expected "
                             f"({self.dim},)")
        return row

    def upsert_item(self, item_id: int, row) -> None:
        """Insert or replace one item row (seen lists are untouched)."""
        self.items[int(item_id)] = self._row(row, "item")

    def upsert_user(self, user_id: int, row, seen_items) -> None:
        """Insert or replace one user: row and full seen list atomically."""
        seen = np.asarray(seen_items, dtype=np.int64).reshape(-1)
        missing = [int(i) for i in seen if int(i) not in self.items]
        if missing:
            raise ValueError(f"seen list of user {int(user_id)} references "
                             f"unknown items {missing[:5]}")
        self.users[int(user_id)] = self._row(row, "user")
        self.seen[int(user_id)] = seen

    def delete_user(self, user_id: int) -> None:
        """Remove one user (and their seen list); missing id is an error."""
        uid = int(user_id)
        if uid not in self.users:
            raise ValueError(f"cannot delete unknown user id {uid}")
        del self.users[uid]
        del self.seen[uid]

    def delete_items(self, item_ids) -> None:
        """Remove items and scrub them from every seen list."""
        gone = {int(i) for i in np.asarray(item_ids, dtype=np.int64).ravel()}
        unknown = sorted(i for i in gone if i not in self.items)
        if unknown:
            raise ValueError(f"cannot delete unknown item ids {unknown[:5]}")
        for iid in gone:
            del self.items[iid]
        for uid, seen in self.seen.items():
            if len(seen) and any(int(i) in gone for i in seen):
                self.seen[uid] = np.array(
                    [i for i in seen if int(i) not in gone], dtype=np.int64)

    def delete_item(self, item_id: int) -> None:
        """Remove one item and scrub it from every seen list."""
        self.delete_items([item_id])

    # ------------------------------------------------------------------
    # Dense projection + identity
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return len(self.users)

    @property
    def num_items(self) -> int:
        return len(self.items)

    def dense_arrays(self):
        """Project to the snapshot layout: ascending stable-id order.

        Returns ``(user_ids, item_ids, users, items, seen_indptr,
        seen_items)`` where the id arrays map dense row -> stable id and
        the seen CSR holds **dense** item positions (what the serving
        stack consumes).
        """
        user_ids = np.array(sorted(self.users), dtype=np.int64)
        item_ids = np.array(sorted(self.items), dtype=np.int64)
        users = np.ascontiguousarray(
            [self.users[int(u)] for u in user_ids],
            dtype=np.float64).reshape(len(user_ids), self.dim)
        items = np.ascontiguousarray(
            [self.items[int(i)] for i in item_ids],
            dtype=np.float64).reshape(len(item_ids), self.dim)
        dense_seen = []
        for uid in user_ids:
            stable = self.seen[int(uid)]
            pos = np.searchsorted(item_ids, stable)
            ok = (pos < len(item_ids)) & (item_ids[np.minimum(
                pos, max(len(item_ids) - 1, 0))] == stable) \
                if len(item_ids) else np.zeros(len(stable), dtype=bool)
            if not np.all(ok):
                raise ValueError(f"seen list of user {int(uid)} references "
                                 f"items not in the catalogue")
            dense_seen.append(pos.astype(np.int64))
        seen_indptr, seen_items = seen_items_csr(dense_seen)
        return user_ids, item_ids, users, items, seen_indptr, seen_items

    def _identity(self) -> tuple:
        return (SNAPSHOT_SCHEMA, self.model_class, self.dim,
                self.num_users, self.num_items, self.scoring)

    def version(self) -> str:
        """Content hash of the would-be export (the chain-link identity)."""
        _, _, users, items, seen_indptr, seen_items = self.dense_arrays()
        return _content_version(users, items, seen_indptr, seen_items,
                                self._identity())

    def __repr__(self) -> str:
        return (f"LiveState(model={self.model!r}, users={self.num_users}, "
                f"items={self.num_items}, dim={self.dim}, "
                f"scoring={self.scoring!r})")


def _as_state(base) -> LiveState:
    """Accept a LiveState or an EmbeddingSnapshot; return a LiveState."""
    if isinstance(base, LiveState):
        return base
    if isinstance(base, EmbeddingSnapshot):
        return LiveState.from_snapshot(base)
    raise TypeError(f"expected LiveState or EmbeddingSnapshot, "
                    f"got {type(base).__name__}")


def _check_identity(state: LiveState, manifest: DeltaManifest) -> None:
    """A delta only applies to states with the same serving identity."""
    mine = (state.model_class, state.dim, state.scoring)
    theirs = (manifest.model_class, manifest.dim, manifest.scoring)
    if mine != theirs:
        raise ValueError(f"delta identity {theirs} does not match state "
                         f"identity {mine}")


# ----------------------------------------------------------------------
# Diff / apply
# ----------------------------------------------------------------------
def diff_states(old, new) -> DeltaOps:
    """The minimal op set turning ``old`` into ``new``.

    Both sides must share the serving identity (model class, dim,
    scoring).  A user whose row and post-scrub seen list are unchanged
    is *not* re-upserted: item deletions already scrub seen lists at
    apply time, so the diff only records genuine edits.
    """
    old, new = _as_state(old), _as_state(new)
    if ((old.model_class, old.dim, old.scoring)
            != (new.model_class, new.dim, new.scoring)):
        raise ValueError("cannot diff states with different identities")
    item_deletes = sorted(set(old.items) - set(new.items))
    user_deletes = sorted(set(old.users) - set(new.users))
    item_upserts = sorted(
        iid for iid, row in new.items.items()
        if iid not in old.items or not np.array_equal(old.items[iid], row))
    gone = set(item_deletes)
    user_upserts = []
    for uid, row in new.users.items():
        old_row = old.users.get(uid)
        if old_row is None or not np.array_equal(old_row, row):
            user_upserts.append(uid)
            continue
        expected = old.seen[uid]
        if gone and len(expected):
            expected = np.array([i for i in expected if int(i) not in gone],
                                dtype=np.int64)
        if not np.array_equal(new.seen[uid], expected):
            user_upserts.append(uid)
    user_upserts.sort()
    seen_indptr, seen_items = seen_items_csr(
        [new.seen[u] for u in user_upserts])
    dim = new.dim
    return DeltaOps(
        user_upsert_ids=np.array(user_upserts, dtype=np.int64),
        user_upsert_rows=np.ascontiguousarray(
            [new.users[u] for u in user_upserts],
            dtype=np.float64).reshape(len(user_upserts), dim),
        user_seen_indptr=seen_indptr, user_seen_items=seen_items,
        item_upsert_ids=np.array(item_upserts, dtype=np.int64),
        item_upsert_rows=np.ascontiguousarray(
            [new.items[i] for i in item_upserts],
            dtype=np.float64).reshape(len(item_upserts), dim),
        user_delete_ids=np.array(user_deletes, dtype=np.int64),
        item_delete_ids=np.array(item_deletes, dtype=np.int64))


def apply_ops(state: LiveState, ops: DeltaOps) -> LiveState:
    """Apply one delta's ops to ``state`` in place (fixed op order)."""
    ops.validate(state.dim)
    if len(ops.item_delete_ids):
        state.delete_items(ops.item_delete_ids)
    for uid in ops.user_delete_ids:
        state.delete_user(int(uid))
    for iid, row in zip(ops.item_upsert_ids, ops.item_upsert_rows):
        state.upsert_item(int(iid), row)
    for i, (uid, row) in enumerate(zip(ops.user_upsert_ids,
                                       ops.user_upsert_rows)):
        state.upsert_user(int(uid), row, ops.seen_of(i))
    return state


# ----------------------------------------------------------------------
# Delta IO
# ----------------------------------------------------------------------
def write_delta(base, ops: DeltaOps, out_dir) -> Delta:
    """Persist one delta directory binding ``base`` to ``apply(base, ops)``.

    ``new_version`` is computed by actually applying the ops to a copy
    of the base, so a written delta can never declare a transition it
    does not perform.
    """
    state = _as_state(base)
    ops.validate(state.dim)
    base_version = state.version()
    new_version = apply_ops(state.copy(), ops).version()
    identity = (DELTA_SCHEMA, state.model_class, state.dim, state.scoring,
                base_version, new_version)
    manifest = DeltaManifest(
        schema=DELTA_SCHEMA,
        version=_delta_version(identity, ops.arrays()),
        base_version=base_version, new_version=new_version,
        model_class=state.model_class, dim=state.dim, scoring=state.scoring,
        **ops.counts)
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    # Crash-safe publish, same scheme as the snapshot exporter: stage
    # every file complete, rename into place, manifest last as the
    # commit point.  A killed writer leaves either no delta (no
    # manifest) or complete old files — never a truncated array.
    staging = _staging_dir(out_dir)
    try:
        for name, fname in _DELTA_FILES.items():
            np.save(staging / fname, np.ascontiguousarray(getattr(ops, name)))
        (staging / _MANIFEST).write_text(manifest.to_json() + "\n")
        for fname in _DELTA_FILES.values():
            os.replace(staging / fname, out_dir / fname)
        os.replace(staging / _MANIFEST, out_dir / _MANIFEST)
    finally:
        shutil.rmtree(staging, ignore_errors=True)
    return Delta(manifest=manifest, ops=ops, path=out_dir)


def export_delta(old, new, out_dir) -> Delta:
    """Diff two states and persist the delta (``old`` -> ``new``)."""
    return write_delta(old, diff_states(old, new), out_dir)


def is_delta(path) -> bool:
    """True if ``path`` holds a delta directory (schema check included)."""
    manifest_path = pathlib.Path(path) / _MANIFEST
    if not manifest_path.is_file():
        return False
    try:
        payload = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    return payload.get("schema") == DELTA_SCHEMA


def load_delta(path, *, verify: bool = True) -> Delta:
    """Open a delta directory written by :func:`write_delta`.

    ``verify=True`` (the default — deltas are small) re-hashes the op
    arrays against the manifest's ``version`` and fails loudly on any
    tampered or truncated file.
    """
    path = pathlib.Path(path)
    manifest_path = path / _MANIFEST
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no delta manifest at {manifest_path}")
    manifest = DeltaManifest.from_json(manifest_path.read_text())
    if manifest.schema != DELTA_SCHEMA:
        raise ValueError(f"delta schema {manifest.schema!r} is not "
                         f"{DELTA_SCHEMA!r}")
    arrays = {name: np.load(path / fname, allow_pickle=False)
              for name, fname in _DELTA_FILES.items()}
    delta = Delta(manifest=manifest, ops=DeltaOps(**arrays), path=path)
    delta.ops.validate(manifest.dim)
    if verify and delta.recompute_version() != manifest.version:
        raise ValueError(
            f"delta content hash does not match manifest version "
            f"{manifest.version!r}; files were modified after export")
    return delta


def _as_delta(entry, *, verify: bool) -> Delta:
    if isinstance(entry, Delta):
        return entry
    return load_delta(entry, verify=verify)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def replay_deltas(base, deltas, *, verify: bool = True) -> LiveState:
    """Apply a delta chain to a base snapshot/state; returns the state.

    Every link is checked: the delta's identity must match the state,
    its ``base_version`` must equal the state's *computed* version (so
    out-of-order and wrong-base chains fail before mutating anything),
    and after applying, the state's version must equal the declared
    ``new_version`` (so a delta that lies about its outcome is caught).
    """
    state = _as_state(base).copy()
    version = state.version()
    for i, entry in enumerate(deltas):
        delta = _as_delta(entry, verify=verify)
        _check_identity(state, delta.manifest)
        if delta.manifest.base_version != version:
            raise ValueError(
                f"delta chain broken at position {i}: delta expects base "
                f"version {delta.manifest.base_version!r} but the state is "
                f"at {version!r} (out-of-order or wrong-base chain?)")
        apply_ops(state, delta.ops)
        version = state.version()
        if version != delta.manifest.new_version:
            raise ValueError(
                f"delta chain broken at position {i}: applying produced "
                f"version {version!r}, manifest declares "
                f"{delta.manifest.new_version!r}")
    return state


def apply_deltas(base, deltas, out_dir=None, *, verify: bool = True,
                 created_unix: float | None = None) -> EmbeddingSnapshot:
    """Replay a delta chain and materialize the resulting snapshot.

    With ``out_dir`` the snapshot is written to disk through the same
    write path as a fresh export — byte-identical to
    :func:`export_state` of the final state (pass the same
    ``created_unix`` to pin the one wall-clock field).  Without
    ``out_dir`` an in-memory snapshot is returned.
    """
    state = replay_deltas(base, deltas, verify=verify)
    if out_dir is None:
        return snapshot_from_state(state, created_unix=created_unix)
    return export_state(state, out_dir, created_unix=created_unix)


# ----------------------------------------------------------------------
# State -> snapshot
# ----------------------------------------------------------------------
def _state_manifest(state: LiveState, user_ids: np.ndarray,
                    item_ids: np.ndarray, version: str,
                    created_unix: float | None) -> SnapshotManifest:
    extra = dict(state.extra)
    identity_ids = (np.array_equal(user_ids, np.arange(len(user_ids)))
                    and np.array_equal(item_ids, np.arange(len(item_ids))))
    if not identity_ids:
        extra["live"] = {"user_ids": [int(u) for u in user_ids],
                         "item_ids": [int(i) for i in item_ids]}
    return SnapshotManifest(
        schema=SNAPSHOT_SCHEMA, version=version, model=state.model,
        model_class=state.model_class, dim=state.dim,
        num_users=len(user_ids), num_items=len(item_ids),
        dataset=state.dataset, scoring=state.scoring,
        created_unix=time.time() if created_unix is None
        else float(created_unix),
        extra=extra)


def snapshot_from_state(state: LiveState, *,
                        created_unix: float | None = None
                        ) -> EmbeddingSnapshot:
    """Materialize a state as an in-memory snapshot (no files written)."""
    (user_ids, item_ids, users, items,
     seen_indptr, seen_items) = state.dense_arrays()
    version = _content_version(users, items, seen_indptr, seen_items,
                               state._identity())
    manifest = _state_manifest(state, user_ids, item_ids, version,
                               created_unix)
    return EmbeddingSnapshot(manifest, users, items, seen_indptr, seen_items)


def export_state(state: LiveState, out_dir, *,
                 created_unix: float | None = None) -> EmbeddingSnapshot:
    """Write a state as a full snapshot directory (the fresh-export path).

    Uses the exact write path of
    :func:`repro.serve.snapshot.export_snapshot`, which is what makes
    "replayed delta chain == from-scratch export" checkable byte for
    byte (``created_unix`` being the only wall-clock input).
    """
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    _remove_stale_layout(out_dir, for_sharded=False)
    (user_ids, item_ids, users, items,
     seen_indptr, seen_items) = state.dense_arrays()
    version = _content_version(users, items, seen_indptr, seen_items,
                               state._identity())
    manifest = _state_manifest(state, user_ids, item_ids, version,
                               created_unix)
    _write_arrays(out_dir, manifest, users, items, seen_indptr, seen_items)
    return EmbeddingSnapshot(manifest, users, items, seen_indptr, seen_items,
                             path=out_dir)


# ----------------------------------------------------------------------
# Dense-id transitions (consumed by incremental IVF maintenance)
# ----------------------------------------------------------------------
def live_user_ids(snapshot: EmbeddingSnapshot) -> np.ndarray:
    """Dense row -> stable user id map of one snapshot."""
    live = snapshot.manifest.extra.get("live") or {}
    return _ids_array(live.get("user_ids",
                               np.arange(snapshot.manifest.num_users)))


def live_item_ids(snapshot: EmbeddingSnapshot) -> np.ndarray:
    """Dense row -> stable item id map of one snapshot."""
    live = snapshot.manifest.extra.get("live") or {}
    return _ids_array(live.get("item_ids",
                               np.arange(snapshot.manifest.num_items)))


def item_transition(old: EmbeddingSnapshot, new: EmbeddingSnapshot):
    """Dense item-id transition between two snapshot generations.

    Returns ``(old_to_new, added, changed)``:

    * ``old_to_new[i]`` — new dense position of old dense item ``i``,
      or ``-1`` if the item was deleted (matched by stable id);
    * ``added`` — new dense positions with no old counterpart;
    * ``changed`` — new dense positions of *surviving* items whose
      embedding row differs from the old generation (their IVF postings
      stay in place but any PQ codes must be re-encoded).
    """
    old_ids, new_ids = live_item_ids(old), live_item_ids(new)
    pos = np.searchsorted(new_ids, old_ids)
    safe = np.minimum(pos, max(len(new_ids) - 1, 0))
    survives = ((pos < len(new_ids)) & (new_ids[safe] == old_ids)
                if len(new_ids) else np.zeros(len(old_ids), dtype=bool))
    old_to_new = np.where(survives, pos, -1).astype(np.int64)
    hit = np.zeros(len(new_ids), dtype=bool)
    hit[old_to_new[survives]] = True
    added = np.flatnonzero(~hit).astype(np.int64)
    old_rows = np.asarray(old.items)[survives]
    new_rows = np.asarray(new.items)[old_to_new[survives]]
    differs = (old_rows != new_rows).any(axis=1) if len(old_rows) else \
        np.zeros(0, dtype=bool)
    changed = np.sort(old_to_new[survives][differs]).astype(np.int64)
    return old_to_new, added, changed
