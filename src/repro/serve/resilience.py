"""Resilience primitives for the serving stack: breakers, budgets, modes.

The scatter-gather router (:mod:`repro.serve.router`) is fail-stop by
default: one slow or crashing shard call takes the whole request with
it.  This module holds the pieces that turn shard failures into bounded
latency and *explicit* partial results instead:

* :class:`ResilienceConfig` — the per-shard failure policy: a deadline
  budget per shard call, jittered retry/backoff inside that budget,
  optional hedged backup attempts for stragglers, a circuit breaker per
  shard, and the degraded-result mode (annotate vs. strict).
* :class:`CircuitBreaker` — classic closed → open → half-open breaker
  with a pluggable monotonic clock (tests drive transitions with
  :class:`~repro.serve.faults.ManualClock` instead of sleeping).  State
  changes and rejections are counted in the metrics registry.
* :class:`PartialResultError` — raised in ``strict`` mode when a shard
  stays down: the caller asked for exact top-K or nothing, and the
  router will not silently return a ranking that ignored part of the
  catalogue.

Degraded-result semantics (the non-strict default) are carried on
:class:`~repro.serve.index.TopKResult` (``coverage`` < 1,
``failed_shards``) and surfaced per user as
``Recommendation.degraded`` — and degraded lists are **never cached**,
so one bad minute cannot poison the LRU after the shard recovers.  The
full contract is in ``docs/robustness.md``.
"""

from __future__ import annotations

import dataclasses
import time

from repro.obs.metrics import get_registry

__all__ = ["PartialResultError", "ShardCallError", "BreakerOpenError",
           "BreakerConfig", "CircuitBreaker", "ResilienceConfig"]


class PartialResultError(RuntimeError):
    """Strict mode's answer to a dead shard: fail the request loudly
    rather than return a top-K that ignored part of the catalogue."""

    def __init__(self, message: str, *, coverage: float = 0.0,
                 failed_shards: tuple = ()):
        super().__init__(message)
        self.coverage = coverage
        self.failed_shards = failed_shards


class ShardCallError(RuntimeError):
    """One shard exhausted its deadline budget / retries; carries the
    last underlying error (``__cause__``) when there was one."""


class BreakerOpenError(ShardCallError):
    """The shard's circuit breaker is open — the call was never made."""


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class BreakerConfig:
    """Knobs of one :class:`CircuitBreaker`.

    ``failure_threshold`` consecutive failures trip the breaker open;
    after ``reset_timeout_s`` it admits probe calls (half-open), and
    ``success_threshold`` consecutive probe successes close it again.
    A failure while half-open re-opens immediately (and restarts the
    reset timer).
    """

    failure_threshold: int = 5
    reset_timeout_s: float = 30.0
    success_threshold: int = 1
    #: concurrent probe calls admitted while half-open
    half_open_max: int = 1

    def __post_init__(self):
        if self.failure_threshold <= 0:
            raise ValueError(f"failure_threshold must be positive, "
                             f"got {self.failure_threshold}")
        if self.reset_timeout_s <= 0:
            raise ValueError(f"reset_timeout_s must be positive, "
                             f"got {self.reset_timeout_s}")
        if self.success_threshold <= 0:
            raise ValueError(f"success_threshold must be positive, "
                             f"got {self.success_threshold}")
        if self.half_open_max <= 0:
            raise ValueError(f"half_open_max must be positive, "
                             f"got {self.half_open_max}")


#: breaker state -> value of the ``serve.breaker.state`` gauge
_STATE_VALUES = {"closed": 0.0, "half-open": 1.0, "open": 2.0}


class CircuitBreaker:
    """Closed → open → half-open circuit breaker around one dependency.

    Thread-safe; all transitions happen under one lock.  ``clock`` is
    any ``() -> float`` monotonic source (defaults to
    ``time.monotonic``) — tests pass a
    :class:`~repro.serve.faults.ManualClock` and advance it by hand.

    Protocol: call :meth:`allow` before the dependency call; on
    ``False`` skip the call (it *would have been* rejected — the open
    breaker is the whole point).  Afterwards report
    :meth:`record_success` / :meth:`record_failure`.
    """

    def __init__(self, config: BreakerConfig | None = None, *,
                 name: str = "", clock=time.monotonic):
        import threading
        self.config = config or BreakerConfig()
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0
        registry = get_registry()
        labels = None
        if registry.enabled:
            labels = {"instance": registry.next_instance("serve.breaker")}
            if name:
                labels["target"] = name
        self._counter_opened = registry.counter(
            "serve.breaker.opened", "breaker transitions into open",
            labels=labels)
        self._counter_closed = registry.counter(
            "serve.breaker.closed", "breaker transitions back to closed",
            labels=labels)
        self._counter_rejected = registry.counter(
            "serve.breaker.rejected", "calls refused while open",
            labels=labels)
        self._gauge_state = registry.gauge(
            "serve.breaker.state", "0=closed 1=half-open 2=open",
            labels=labels)
        self._gauge_state.set(0.0)

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, applying the open → half-open timeout."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        """Lock held: open breakers become half-open after the timeout."""
        if (self._state == "open"
                and self._clock() - self._opened_at
                >= self.config.reset_timeout_s):
            self._state = "half-open"
            self._consecutive_successes = 0
            self._half_open_inflight = 0
            self._gauge_state.set(_STATE_VALUES[self._state])

    def allow(self) -> bool:
        """Whether the next dependency call may proceed."""
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return True
            if self._state == "half-open":
                if self._half_open_inflight < self.config.half_open_max:
                    self._half_open_inflight += 1
                    return True
                self._counter_rejected.inc()
                return False
            self._counter_rejected.inc()
            return False

    def record_success(self) -> None:
        """Report a successful dependency call."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state == "half-open":
                self._half_open_inflight = max(
                    0, self._half_open_inflight - 1)
                self._consecutive_successes += 1
                if (self._consecutive_successes
                        >= self.config.success_threshold):
                    self._state = "closed"
                    self._counter_closed.inc()
                    self._gauge_state.set(_STATE_VALUES[self._state])

    def record_failure(self) -> None:
        """Report a failed dependency call (error or deadline miss)."""
        with self._lock:
            self._consecutive_successes = 0
            if self._state == "half-open":
                # A failed probe re-opens immediately and restarts the
                # reset timer — no threshold while probing.
                self._half_open_inflight = max(
                    0, self._half_open_inflight - 1)
                self._trip()
                return
            if self._state == "closed":
                self._consecutive_failures += 1
                if (self._consecutive_failures
                        >= self.config.failure_threshold):
                    self._trip()

    def _trip(self) -> None:
        """Lock held: transition into open."""
        self._state = "open"
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._counter_opened.inc()
        self._gauge_state.set(_STATE_VALUES[self._state])

    def __repr__(self) -> str:
        return (f"CircuitBreaker(name={self.name!r}, state={self.state!r}, "
                f"failure_threshold={self.config.failure_threshold}, "
                f"reset_timeout_s={self.config.reset_timeout_s})")


# ----------------------------------------------------------------------
# Router failure policy
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ResilienceConfig:
    """Per-shard failure policy of the scatter-gather router.

    With a config installed the router runs every shard call on a
    worker thread under a **deadline budget**: ``deadline_ms`` covers
    *all* attempts at one shard for one chunk (retries eat the same
    budget — a failing shard cannot stall the request ``retries`` full
    deadlines).  Failed attempts retry after ``backoff_ms`` with
    deterministic seeded jitter; slow attempts are optionally
    **hedged** (a backup attempt after ``hedge_ms`` — first success
    wins); and a per-shard :class:`CircuitBreaker` short-circuits a
    shard that keeps failing, so its deadline budget stops being paid
    at all.

    When a shard still fails: ``strict=False`` (default) returns a
    **degraded** result — merged from the surviving shards, coverage
    and failed-shard list attached, never cached; ``strict=True``
    raises :class:`PartialResultError` instead.
    """

    #: total per-shard deadline budget per routed chunk, milliseconds
    deadline_ms: float = 100.0
    #: additional attempts after the first (0 = no retry)
    retries: int = 1
    #: base backoff between attempts, milliseconds
    backoff_ms: float = 2.0
    #: uniform jitter fraction applied to the backoff (0.5 -> ±50%)
    backoff_jitter: float = 0.5
    #: hedge trigger: back-up attempt after this many ms without a
    #: result (None disables hedging)
    hedge_ms: float | None = None
    #: per-shard circuit breaker (None disables breakers)
    breaker: BreakerConfig | None = None
    #: strict mode raises PartialResultError instead of degrading
    strict: bool = False
    #: seed of the deterministic backoff-jitter stream
    seed: int = 0

    def __post_init__(self):
        if self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive, "
                             f"got {self.deadline_ms}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_ms < 0:
            raise ValueError(f"backoff_ms must be >= 0, "
                             f"got {self.backoff_ms}")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(f"backoff_jitter must lie in [0, 1], "
                             f"got {self.backoff_jitter}")
        if self.hedge_ms is not None and self.hedge_ms <= 0:
            raise ValueError(f"hedge_ms must be positive, "
                             f"got {self.hedge_ms}")
