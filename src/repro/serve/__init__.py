"""Online serving: embedding snapshots, top-K indexes, request front end.

The offline stack (train → evaluate) hands a trained backbone to this
package, which freezes it into a memory-mappable
:class:`~repro.serve.snapshot.EmbeddingSnapshot`, retrieves over it with
an exact or int8-quantized :class:`~repro.serve.index.TopKIndex`, and
answers batched user requests through
:class:`~repro.serve.service.RecommendationService`.

For horizontal scale the same state can be exported **sharded**
(:func:`~repro.serve.snapshot.export_sharded_snapshot`): user and item
partitions with per-shard manifests under a content-hashed
``shards.json``, read back by :mod:`repro.serve.shard` and served
through the scatter-gather
:class:`~repro.serve.router.ShardedRecommendationService`, whose exact
path is bit-identical to the single-process index (see
``docs/sharding.md``).

Live state evolves without full re-exports through
:mod:`repro.serve.delta`: content-hash-chained **delta snapshots**
(:func:`~repro.serve.delta.export_delta` /
:func:`~repro.serve.delta.apply_deltas`) capture row upserts and
deletes against a base version, and
:meth:`RecommendationService.refresh` /
:meth:`~repro.serve.runtime.ServingRuntime.refresh` swap the served
version atomically between micro-batches (see ``docs/live_index.md``).

The serving path is hardened for partial failure: the sharded router
takes a :class:`~repro.serve.resilience.ResilienceConfig` (per-shard
deadlines, jittered retries, hedged backup requests, circuit breakers)
and reports shard loss as **explicit degraded results**
(``TopKResult.coverage`` / ``Recommendation.degraded``) or a
:class:`~repro.serve.resilience.PartialResultError` in strict mode —
never a silently-wrong top-k.  :mod:`repro.serve.faults` provides a
deterministic, seeded fault-injection harness for chaos testing (see
``docs/robustness.md``).

Typical flow (also available as ``repro export`` / ``repro recommend``)::

    from repro.serve import export_snapshot, load_snapshot
    from repro.serve import RecommendationService

    export_snapshot(trained_model, dataset, "snapshots/mf-bsl")
    service = RecommendationService(load_snapshot("snapshots/mf-bsl"))
    for rec in service.recommend([3, 14, 15], k=10):
        print(rec.user_id, rec.items)
"""

from repro.serve.delta import (DELTA_SCHEMA, Delta, DeltaManifest, DeltaOps,
                               LiveState, apply_deltas, diff_states,
                               export_delta, export_state, is_delta,
                               load_delta, replay_deltas, write_delta)
from repro.serve.faults import (FAULT_KINDS, FaultEvent, FaultPlan, FaultSpec,
                                FaultyIndex, FaultyService, FaultyShardIndex,
                                InjectedFault, ManualClock, corrupt_array_file)
from repro.serve.index import (PANEL_WIDTH, ExactTopKIndex,
                               QuantizedTopKIndex, TopKIndex, TopKResult,
                               build_index)
from repro.serve.resilience import (BreakerConfig, BreakerOpenError,
                                    CircuitBreaker, PartialResultError,
                                    ResilienceConfig, ShardCallError)
from repro.serve.router import (RouterStats, ShardedRecommendationService,
                                ShardedTopKIndex)
from repro.serve.runtime import (AsyncRequest, DeadlineExceeded, OverloadError,
                                 RuntimeConfig, RuntimeStats, ServingRuntime,
                                 WorkerCrashed)
from repro.serve.service import (LRUCache, PendingRequest, Recommendation,
                                 RecommendationService, ServiceStats)
from repro.serve.shard import (ExactShardIndex, ItemShard, ItemShardIndex,
                               QuantizedShardIndex, ShardedSnapshot,
                               UserShard, build_shard_index,
                               load_sharded_snapshot)
from repro.serve.snapshot import (SHARD_SCHEMA, SHARDED_SCHEMA,
                                  SNAPSHOT_SCHEMA, EmbeddingSnapshot,
                                  ShardManifest, ShardedManifest,
                                  SnapshotIntegrityError, SnapshotManifest,
                                  export_sharded_snapshot,
                                  export_sharded_source_snapshot,
                                  export_snapshot, is_sharded_snapshot,
                                  load_snapshot, partition_ids,
                                  quarantine_snapshot)

__all__ = [
    "SNAPSHOT_SCHEMA", "SHARD_SCHEMA", "SHARDED_SCHEMA",
    "SnapshotManifest", "ShardManifest", "ShardedManifest",
    "EmbeddingSnapshot", "export_snapshot", "load_snapshot",
    "partition_ids", "export_sharded_snapshot",
    "export_sharded_source_snapshot", "is_sharded_snapshot",
    "PANEL_WIDTH", "TopKResult", "TopKIndex", "ExactTopKIndex",
    "QuantizedTopKIndex", "build_index",
    "UserShard", "ItemShard", "ItemShardIndex", "ExactShardIndex",
    "QuantizedShardIndex", "ShardedSnapshot", "load_sharded_snapshot",
    "build_shard_index",
    "RouterStats", "ShardedTopKIndex", "ShardedRecommendationService",
    "Recommendation", "ServiceStats", "LRUCache", "PendingRequest",
    "RecommendationService",
    "OverloadError", "RuntimeConfig", "RuntimeStats", "AsyncRequest",
    "ServingRuntime",
    "DELTA_SCHEMA", "DeltaManifest", "DeltaOps", "Delta", "LiveState",
    "diff_states", "export_delta", "write_delta", "export_state",
    "is_delta", "load_delta", "replay_deltas", "apply_deltas",
    "SnapshotIntegrityError", "quarantine_snapshot",
    "FAULT_KINDS", "FaultSpec", "FaultEvent", "FaultPlan", "InjectedFault",
    "FaultyShardIndex", "FaultyIndex", "FaultyService", "corrupt_array_file",
    "ManualClock",
    "ResilienceConfig", "BreakerConfig", "CircuitBreaker",
    "PartialResultError", "ShardCallError", "BreakerOpenError",
    "DeadlineExceeded", "WorkerCrashed",
]
