"""Online serving: embedding snapshots, top-K indexes, request front end.

The offline stack (train → evaluate) hands a trained backbone to this
package, which freezes it into a memory-mappable
:class:`~repro.serve.snapshot.EmbeddingSnapshot`, retrieves over it with
an exact or int8-quantized :class:`~repro.serve.index.TopKIndex`, and
answers batched user requests through
:class:`~repro.serve.service.RecommendationService`.

Typical flow (also available as ``repro export`` / ``repro recommend``)::

    from repro.serve import export_snapshot, load_snapshot
    from repro.serve import RecommendationService

    export_snapshot(trained_model, dataset, "snapshots/mf-bsl")
    service = RecommendationService(load_snapshot("snapshots/mf-bsl"))
    for rec in service.recommend([3, 14, 15], k=10):
        print(rec.user_id, rec.items)
"""

from repro.serve.index import (ExactTopKIndex, QuantizedTopKIndex, TopKIndex,
                               TopKResult, build_index)
from repro.serve.service import (LRUCache, PendingRequest, Recommendation,
                                 RecommendationService, ServiceStats)
from repro.serve.snapshot import (SNAPSHOT_SCHEMA, EmbeddingSnapshot,
                                  SnapshotManifest, export_snapshot,
                                  load_snapshot)

__all__ = [
    "SNAPSHOT_SCHEMA", "SnapshotManifest", "EmbeddingSnapshot",
    "export_snapshot", "load_snapshot",
    "TopKResult", "TopKIndex", "ExactTopKIndex", "QuantizedTopKIndex",
    "build_index",
    "Recommendation", "ServiceStats", "LRUCache", "PendingRequest",
    "RecommendationService",
]
