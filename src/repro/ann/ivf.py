"""IVF candidate generation: coarse quantizer, inverted lists, search.

An IVF index partitions the (scoring-ready) item table with the repo's
own k-means into ``nlist`` clusters and keeps one **inverted list** of
global item ids per cluster.  A request probes the ``nprobe`` lists
whose centroids score highest for the user, and only the items in the
probed lists become candidates.

Three properties make this a drop-in backend for the serving stack:

* **Exact re-scoring.**  Candidates are scored with the same
  fixed-shape panel GEMMs (:func:`repro.serve.index.panel_scores`) and
  the same canonical ranking (:func:`repro.eval.metrics.rank_items`)
  as :class:`~repro.serve.index.ExactTopKIndex` — the approximation is
  only in *which* items get scored, never in the returned scores.
  With ``nprobe == nlist`` every item is a candidate, the assembled
  score block *is* the exact index's score block, and items and scores
  come out bit-identical.
* **Over-fetch.**  When ``filter_seen`` is on, each user's probe count
  is expanded past ``nprobe`` until the probed lists hold at least
  ``k + |seen(u)|`` postings, so masking the user's training items can
  never starve the top-``k``.
* **Signature grouping.**  Users in a request chunk whose probe sets
  coincide (a *probe signature*) are scored together against one
  cached, ascending-id, zero-padded panel block — assembling candidate
  rows with row-wise copies instead of per-element gathers.  Because a
  signature's candidate ids are sorted ascending, :func:`rank_items`'
  tie order coincides with the global canonical ``(score desc, id
  asc)`` order by construction.

For serving a fixed user population the per-user probe selection is
itself static, so :class:`IVFFlatIndex` memoizes a **routing table**
per ``(k, nprobe, filter_seen)`` — each user's signature and the
positions of their seen items inside the signature's candidate array —
the offline-refreshed candidate routing of industrial two-stage
recommenders.  The routed and dynamically-planned paths return
identical results (pinned by ``tests/test_ann.py``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.kmeans import kmeans, sq_dists
from repro.eval.metrics import rank_items
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.serve.index import (TopKResult, build_panels, panel_scores,
                               scoring_ready_items, scoring_ready_users)
from repro.serve.snapshot import EmbeddingSnapshot

__all__ = ["ANN_PANEL_WIDTH", "train_coarse_quantizer", "assign_lists",
           "IVFIndexData", "ProbePlan", "IVFFlatIndex"]

#: Default item-panel width of the candidate re-scoring GEMMs.  Narrower
#: than :data:`repro.serve.index.PANEL_WIDTH` because candidate sets are
#: small; parity comparisons must pin the same width on both sides.
ANN_PANEL_WIDTH = 128


# ----------------------------------------------------------------------
# Training
# ----------------------------------------------------------------------
def train_coarse_quantizer(items_ready: np.ndarray, nlist: int,
                           seed: int = 0, n_iter: int = 25
                           ) -> tuple[np.ndarray, np.ndarray]:
    """K-means the scoring-ready item table into ``nlist`` clusters.

    Returns ``(centroids, labels)``.  Deterministic for a given
    ``(items, nlist, seed, n_iter)`` — the seed feeds a fresh
    ``numpy.random.default_rng``, which is what makes index builds
    byte-reproducible (see ``docs/ann.md``).
    """
    if not 1 <= nlist <= len(items_ready):
        raise ValueError(f"need 1 <= nlist <= {len(items_ready)}, "
                         f"got {nlist}")
    return kmeans(items_ready, nlist, n_iter=n_iter,
                  rng=np.random.default_rng(seed))


def _spill_owners(d: np.ndarray, spill: int) -> np.ndarray:
    """``(n, spill)`` nearest-centroid indices per row of distances ``d``."""
    if spill == 1:
        return d.argmin(axis=1)[:, None]
    part = np.argpartition(d, spill - 1, axis=1)[:, :spill]
    order = np.take_along_axis(d, part, axis=1).argsort(
        axis=1, kind="stable")
    return np.take_along_axis(part, order, axis=1)


def assign_lists(items_ready: np.ndarray, centroids: np.ndarray,
                 spill: int = 1) -> list[np.ndarray]:
    """Assign every item to its ``spill`` nearest centroids.

    ``spill == 1`` is plain IVF; larger values store each item
    redundantly in several lists (ScaNN-style spilling), trading index
    size for recall at small ``nprobe``.  Every returned list is sorted
    ascending in global item id — the property that keeps signature
    candidate arrays globally canonical.
    """
    nlist = len(centroids)
    if not 1 <= spill <= nlist:
        raise ValueError(f"need 1 <= spill <= nlist={nlist}, got {spill}")
    owners = _spill_owners(sq_dists(items_ready, centroids), spill)
    return [np.sort(np.flatnonzero((owners == c).any(axis=1))).astype(
        np.int64) for c in range(nlist)]


# ----------------------------------------------------------------------
# Index data (centroids + inverted lists)
# ----------------------------------------------------------------------
class IVFIndexData:
    """Centroids plus inverted lists, with the probe-planning machinery.

    This is the persistent part of an IVF index (what
    :mod:`repro.ann.build` writes to disk) and the candidate generator
    the sharded router consumes.  It holds no user or item embeddings —
    scoring objects (:class:`IVFFlatIndex`,
    :class:`~repro.serve.router.ShardedTopKIndex`) bring their own.

    Parameters
    ----------
    centroids:
        ``(nlist, dim)`` float64 coarse-quantizer centroids in
        scoring-ready space.
    list_indptr, list_items:
        CSR layout of the inverted lists: list ``c`` holds global item
        ids ``list_items[list_indptr[c]:list_indptr[c + 1]]``, sorted
        ascending.
    num_items:
        Catalogue size (bounds the stored ids).
    default_nprobe:
        Probe count used when a search does not specify one.
    """

    def __init__(self, centroids: np.ndarray, list_indptr: np.ndarray,
                 list_items: np.ndarray, num_items: int,
                 default_nprobe: int = 2):
        centroids = np.asarray(centroids, dtype=np.float64)
        list_indptr = np.asarray(list_indptr, dtype=np.int64)
        list_items = np.asarray(list_items, dtype=np.int64)
        if centroids.ndim != 2:
            raise ValueError("centroids must be 2-D")
        if len(list_indptr) != len(centroids) + 1:
            raise ValueError("list_indptr length must be nlist + 1")
        if list_indptr[0] != 0 or list_indptr[-1] != len(list_items):
            raise ValueError("list_indptr does not span list_items")
        if not np.all(np.diff(list_indptr) >= 0):
            raise ValueError("list_indptr is not monotone")
        if len(list_items) and (list_items.min() < 0
                                or list_items.max() >= num_items):
            raise ValueError("list_items contains out-of-range item ids")
        if not 1 <= default_nprobe <= len(centroids):
            raise ValueError(f"need 1 <= default_nprobe <= nlist, "
                             f"got {default_nprobe}")
        covered = np.unique(list_items)
        if len(covered) != num_items:
            raise ValueError(f"inverted lists cover {len(covered)} of "
                             f"{num_items} items; every item must appear "
                             f"in at least one list")
        self.centroids = centroids
        self.list_indptr = list_indptr
        self.list_items = list_items
        self.num_items = int(num_items)
        self.default_nprobe = int(default_nprobe)
        self.sizes = np.diff(list_indptr)
        #: most lists any single item appears in; the over-fetch
        #: expansion scales by this so posting counts (which count a
        #: spilled item once per list) still bound unique candidates
        self.max_spill = int(np.bincount(
            list_items, minlength=num_items).max()) if len(list_items) else 1
        #: probe signature -> (candidate ids asc, posting rows into
        #: ``list_items`` aligned with the ids)
        self._signatures: dict[bytes, tuple[np.ndarray, np.ndarray]] = {}
        #: (items token, signature, panel width) -> panel block
        self._panels: dict[tuple, np.ndarray] = {}
        #: token of the snapshot generation the cached panels belong to
        self._panels_token: str | None = None

    @property
    def nlist(self) -> int:
        """Number of inverted lists (coarse-quantizer clusters)."""
        return len(self.centroids)

    @property
    def spill(self) -> int:
        """Ceil of the average number of lists holding each item."""
        return -(-len(self.list_items) // self.num_items)

    @property
    def table_bytes(self) -> int:
        """Bytes held by centroids and inverted lists (not panels)."""
        return (self.centroids.nbytes + self.list_indptr.nbytes
                + self.list_items.nbytes)

    def list_ids(self, c: int) -> np.ndarray:
        """Global item ids of inverted list ``c`` (ascending)."""
        return self.list_items[self.list_indptr[c]:self.list_indptr[c + 1]]

    # ------------------------------------------------------------------
    def signature(self, clusters: tuple[int, ...]
                  ) -> tuple[np.ndarray, np.ndarray]:
        """Candidate ids (ascending, deduplicated) of a probe set.

        Returns ``(ids, posting_rows)`` where ``posting_rows[j]`` is the
        flat index into ``list_items`` that contributed ``ids[j]`` (the
        first occurrence when spilling stores an item in several probed
        lists) — the alignment the PQ codes need.  Memoized: request
        streams revisit a handful of signatures.
        """
        key = np.asarray(clusters, dtype=np.int64).tobytes()
        hit = self._signatures.get(key)
        if hit is None:
            rows = np.concatenate(
                [np.arange(self.list_indptr[c], self.list_indptr[c + 1])
                 for c in clusters]) if clusters else np.empty(0, np.int64)
            ids, first = np.unique(self.list_items[rows],
                                   return_index=True)
            hit = (ids, rows[first])
            self._signatures[key] = hit
        return hit

    def panels_for(self, clusters: tuple[int, ...], items_ready: np.ndarray,
                   width: int, token: str | None = None
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Candidate ids plus their fixed-width scoring panels.

        The panel block packs the signature's item rows (ascending
        global id) into zero-padded ``width``-row panels via the shared
        :func:`~repro.serve.index.build_panels`, so every re-scoring
        GEMM has the same shape — the partition-invariance property the
        bit-parity contract rides on.

        ``token`` must identify the *content* of ``items_ready``
        (serving indexes pass their ``snapshot.version``): panels bake
        item rows in, so an index data object shared across snapshot
        generations — exactly what a live refresh produces — must never
        serve a panel built from the previous generation's rows.
        """
        ids, _ = self.signature(clusters)
        if token != self._panels_token:
            # a new generation took over: its predecessor's panels can
            # never be served again, so reclaim their memory eagerly
            self._panels.clear()
            self._panels_token = token
        key = (token, np.asarray(clusters, dtype=np.int64).tobytes(), width)
        panels = self._panels.get(key)
        if panels is None:
            panels = build_panels(items_ready[ids], width)
            self._panels[key] = panels
        return ids, panels

    # ------------------------------------------------------------------
    # Incremental maintenance (live-index refresh)
    # ------------------------------------------------------------------
    def updated(self, old_to_new: np.ndarray, added: np.ndarray,
                items_ready: np.ndarray, num_items: int,
                *, changed: np.ndarray | None = None,
                spill: int | None = None
                ) -> tuple["IVFIndexData", np.ndarray]:
        """Posting-list insert/delete for one snapshot transition.

        ``old_to_new`` maps every old dense item id to its new dense id
        (``-1`` = deleted); ``added`` lists new dense ids with no old
        counterpart; ``items_ready`` is the **new** generation's
        scoring-ready item table (see
        :func:`repro.serve.delta.item_transition`).  Surviving postings
        are remapped in place — an upserted row *stays* in its old
        lists, which is what the :meth:`staleness` meter measures —
        deleted postings are dropped, and each added item is inserted
        into its ``spill`` nearest centroids (default: this index's
        spill factor).  Lists stay sorted ascending in new dense id.

        Returns ``(data, code_map)`` where ``code_map[p]`` is the old
        posting row that new posting ``p`` carries over, or ``-1`` if
        the posting needs fresh PQ encoding (inserted items, plus any
        ids in ``changed`` — surviving items whose embedding row moved,
        which keeps their postings but invalidates their residuals).
        """
        old_to_new = np.asarray(old_to_new, dtype=np.int64)
        if len(old_to_new) != self.num_items:
            raise ValueError(f"old_to_new has {len(old_to_new)} entries for "
                             f"{self.num_items} items")
        added = np.asarray(added, dtype=np.int64)
        items_ready = np.asarray(items_ready, dtype=np.float64)
        if len(items_ready) != num_items:
            raise ValueError(f"items_ready holds {len(items_ready)} rows "
                             f"but num_items is {num_items}")
        owner = np.repeat(np.arange(self.nlist, dtype=np.int64), self.sizes)
        mapped = old_to_new[self.list_items]
        keep = mapped >= 0
        lists_all = owner[keep]
        ids_all = mapped[keep]
        src_all = np.flatnonzero(keep).astype(np.int64)
        if len(added):
            spill = max(1, self.spill) if spill is None else int(spill)
            spill = min(spill, self.nlist)
            owners = _spill_owners(
                sq_dists(items_ready[added], self.centroids), spill)
            lists_all = np.concatenate([lists_all, owners.ravel()])
            ids_all = np.concatenate([ids_all,
                                      np.repeat(added, owners.shape[1])])
            src_all = np.concatenate([src_all,
                                      np.full(owners.size, -1, np.int64)])
        order = np.lexsort((ids_all, lists_all))
        lists_all, ids_all = lists_all[order], ids_all[order]
        code_map = src_all[order]
        if changed is not None and len(changed):
            code_map = np.where(
                np.isin(ids_all, np.asarray(changed, dtype=np.int64)),
                -1, code_map)
        indptr = np.concatenate([
            np.zeros(1, np.int64),
            np.cumsum(np.bincount(lists_all, minlength=self.nlist))])
        data = IVFIndexData(self.centroids, indptr, ids_all, num_items,
                            self.default_nprobe)
        get_registry().counter(
            "ann.ivf.incremental_updates",
            "posting-list maintenance passes (updated())").inc()
        return data, code_map

    def staleness(self, items_ready: np.ndarray) -> float:
        """Fraction of items whose nearest centroid no longer owns them.

        An item is *fresh* if any of the lists holding it is its
        nearest centroid (the same squared-distance geometry
        :func:`assign_lists` uses).  A freshly built index has
        staleness 0; churn raises it as upserted rows drift away from
        the lists they were filed under and inserted rows pull
        centroids nowhere — the trigger for :meth:`reclustered`.
        """
        if not len(self.list_items):
            return 0.0
        nearest = sq_dists(np.asarray(items_ready, dtype=np.float64),
                           self.centroids).argmin(axis=1)
        owner = np.repeat(np.arange(self.nlist, dtype=np.int64), self.sizes)
        fresh = np.zeros(self.num_items, dtype=bool)
        fresh[self.list_items[owner == nearest[self.list_items]]] = True
        value = float(1.0 - fresh.sum() / self.num_items)
        get_registry().gauge(
            "ann.ivf.staleness",
            "fraction of items filed away from their nearest "
            "centroid, last measured").set(value)
        return value

    def reclustered(self, items_ready: np.ndarray, *, lists: int = 1
                    ) -> tuple["IVFIndexData", np.ndarray]:
        """Partially re-cluster the ``lists`` stalest inverted lists.

        Stale postings (owning list != nearest centroid) of the worst
        offenders move to their nearest list — unless the item already
        has a posting there, in which case it stays put so no duplicate
        posting appears in one list — and every affected centroid
        (drained or receiving) is re-centered on its new members.  A
        full k-means pass is never run: cost scales with the moved
        lists, not the catalogue.

        Returns ``(data, code_map)``; re-centering changes the residual
        base of *every* posting in an affected list, so those all come
        back ``-1`` (fresh PQ encoding required).
        """
        items_ready = np.asarray(items_ready, dtype=np.float64)
        nearest = sq_dists(items_ready, self.centroids).argmin(axis=1)
        owner = np.repeat(np.arange(self.nlist, dtype=np.int64), self.sizes)
        stale = owner != nearest[self.list_items]
        per_list = np.bincount(owner[stale], minlength=self.nlist)
        worst = np.argsort(-per_list, kind="stable")[:max(int(lists), 0)]
        worst = worst[per_list[worst] > 0]
        if not len(worst):
            return self, np.arange(len(self.list_items), dtype=np.int64)
        move = stale & np.isin(owner, worst)
        # moving a spilled item into a list that already holds it would
        # create a duplicate posting; keep those in place
        keys = owner * np.int64(self.num_items) + self.list_items
        target = (nearest[self.list_items] * np.int64(self.num_items)
                  + self.list_items)
        move &= ~np.isin(target, keys)
        new_owner = np.where(move, nearest[self.list_items], owner)
        affected = np.unique(np.concatenate([worst, new_owner[move]]))
        centroids = self.centroids.copy()
        for c in affected:
            members = np.unique(self.list_items[new_owner == c])
            if len(members):
                centroids[c] = items_ready[members].mean(axis=0)
        order = np.lexsort((self.list_items, new_owner))
        items_new = self.list_items[order]
        lists_new = new_owner[order]
        indptr = np.concatenate([
            np.zeros(1, np.int64),
            np.cumsum(np.bincount(lists_new, minlength=self.nlist))])
        code_map = np.where(np.isin(lists_new, affected), -1,
                            order.astype(np.int64))
        data = IVFIndexData(centroids, indptr, items_new, self.num_items,
                            self.default_nprobe)
        registry = get_registry()
        registry.counter(
            "ann.ivf.reclusters",
            "partial re-clustering passes that moved postings").inc()
        registry.counter(
            "ann.ivf.reclustered_lists",
            "inverted lists drained by partial re-clustering").inc(
            len(worst))
        return data, code_map

    # ------------------------------------------------------------------
    def plan(self, vectors: np.ndarray, seen_counts: np.ndarray, k: int,
             nprobe: int | None = None, filter_seen: bool = True,
             scoring: str = "inner") -> "ProbePlan":
        """Select probed lists for a block of prepared user vectors.

        Lists are ranked per user by centroid score under the
        snapshot's ``scoring`` (inner/cosine: the dot product with the
        already-transformed ``vectors``; euclidean: negated squared
        distance), descending, ties broken by the smaller list index.
        The probe count starts at ``nprobe`` and expands per user until
        the probed lists hold at least ``k + seen_counts[u]`` postings
        (``k`` when ``filter_seen`` is off) — the over-fetch guarantee.
        """
        nprobe = self.default_nprobe if nprobe is None else nprobe
        if not 1 <= nprobe <= self.nlist:
            raise ValueError(f"need 1 <= nprobe <= nlist={self.nlist}, "
                             f"got {nprobe}")
        m = len(vectors)
        if scoring == "euclidean":
            scores = -sq_dists(vectors, self.centroids)
        else:
            scores = vectors @ self.centroids.T
        order = np.argsort(-scores, axis=1, kind="stable")
        cum = np.cumsum(self.sizes[order], axis=1)
        need = np.full(m, k, dtype=np.int64)
        if filter_seen:
            need = need + np.asarray(seen_counts, dtype=np.int64)
        need = need * self.max_spill
        p = np.maximum(nprobe, 1 + (cum < need[:, None]).sum(axis=1))
        p = np.minimum(p, self.nlist)
        pmax = int(p.max()) if m else nprobe
        probes = np.where(np.arange(pmax)[None, :] < p[:, None],
                          order[:, :pmax], self.nlist)
        probes.sort(axis=1)
        uniq, first, inverse = np.unique(probes, axis=0, return_index=True,
                                         return_inverse=True)
        signatures = []
        for g in range(len(uniq)):
            clusters = uniq[g]
            signatures.append(tuple(int(c) for c in clusters[
                clusters < self.nlist]))
        return ProbePlan(signatures=signatures,
                         group_of_row=inverse.ravel().astype(np.int64))

    def candidates_csr(self, vectors: np.ndarray, seen_counts: np.ndarray,
                       k: int, nprobe: int | None = None,
                       filter_seen: bool = True, scoring: str = "inner"
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Per-user candidate ids, CSR layout, ascending global ids.

        The candidate-generator API the sharded router consumes: row
        ``r`` of the request block may only be served items in
        ``ids[indptr[r]:indptr[r + 1]]``.
        """
        plan = self.plan(vectors, seen_counts, k, nprobe, filter_seen,
                         scoring)
        group_ids = [self.signature(sig)[0] for sig in plan.signatures]
        lengths = np.array([len(group_ids[g]) for g in plan.group_of_row],
                           dtype=np.int64)
        indptr = np.concatenate([np.zeros(1, np.int64), np.cumsum(lengths)])
        ids = (np.concatenate([group_ids[g] for g in plan.group_of_row])
               if len(lengths) else np.empty(0, np.int64))
        return indptr, ids


class ProbePlan:
    """Probe signatures chosen for one request block.

    ``signatures[group_of_row[r]]`` is the tuple of probed list indices
    of request row ``r``; rows sharing a signature share one candidate
    set and one scoring GEMM.
    """

    __slots__ = ("signatures", "group_of_row")

    def __init__(self, signatures: list[tuple[int, ...]],
                 group_of_row: np.ndarray):
        self.signatures = signatures
        self.group_of_row = group_of_row

    def rows_by_group(self) -> list[np.ndarray]:
        """Request rows of each signature group, ascending."""
        order = np.argsort(self.group_of_row, kind="stable")
        bounds = np.searchsorted(self.group_of_row[order],
                                 np.arange(len(self.signatures) + 1))
        return [order[bounds[g]:bounds[g + 1]]
                for g in range(len(self.signatures))]


# ----------------------------------------------------------------------
# IVF-Flat serving index
# ----------------------------------------------------------------------
class IVFFlatIndex:
    """Approximate top-K retrieval: IVF candidates, exact re-scoring.

    Implements the :class:`~repro.serve.index.TopKIndex` protocol
    (``topk`` / ``kind`` / ``snapshot`` / ``table_bytes``), so it plugs
    into :class:`~repro.serve.service.RecommendationService` as a
    drop-in index backend.

    Parameters
    ----------
    snapshot:
        Loaded :class:`~repro.serve.snapshot.EmbeddingSnapshot` the
        index was built from (provides user vectors, item rows for the
        re-scoring panels, and the seen-item CSR).
    data:
        Trained :class:`IVFIndexData` (centroids + inverted lists).
    nprobe:
        Lists probed per user before over-fetch expansion (default:
        the index's ``default_nprobe``).
    chunk_users:
        Users planned/scored per block; larger chunks amortize probe
        planning, the default suits throughput-oriented streams.
    panel_width:
        Width of the candidate re-scoring panels.  Bit-parity
        comparisons must pin the same width on the exact side
        (``ExactTopKIndex(panel_width=...)``).
    routed:
        Memoize per-user routing tables (signature + localized seen
        positions) per ``(k, nprobe, filter_seen)``.  Identical results
        to dynamic planning; disable to force the dynamic path.
    """

    kind = "ivf"

    def __init__(self, snapshot: EmbeddingSnapshot, data: IVFIndexData,
                 nprobe: int | None = None, chunk_users: int = 1024,
                 panel_width: int = ANN_PANEL_WIDTH, routed: bool = True):
        if chunk_users <= 0:
            raise ValueError(f"chunk_users must be positive, got {chunk_users}")
        if panel_width <= 0:
            raise ValueError(f"panel_width must be positive, got {panel_width}")
        if data.num_items != snapshot.manifest.num_items:
            raise ValueError(
                f"index covers {data.num_items} items but snapshot has "
                f"{snapshot.manifest.num_items}")
        self.snapshot = snapshot
        self.data = data
        self.nprobe = data.default_nprobe if nprobe is None else int(nprobe)
        if not 1 <= self.nprobe <= data.nlist:
            raise ValueError(f"need 1 <= nprobe <= nlist={data.nlist}, "
                             f"got {self.nprobe}")
        self.chunk_users = chunk_users
        self.panel_width = panel_width
        self.routed = routed
        self._items_ready = scoring_ready_items(snapshot.items,
                                                snapshot.scoring)
        self._item_sq = ((self._items_ready ** 2).sum(axis=1)
                         if snapshot.scoring == "euclidean" else None)
        self._seen_counts = np.diff(snapshot.seen_indptr).astype(np.int64)
        #: (k, nprobe, filter_seen) -> routing table over all users;
        #: bounded (insertion-order eviction) because ``k`` is
        #: caller-controlled and each table spans the population
        self._routing: dict[tuple, "_RoutingTable"] = {}
        registry = get_registry()
        # Process-wide aggregates (no per-index labels): every IVF
        # instance feeds the same probe/candidate counters.
        self._ctr_queries = registry.counter(
            "ann.ivf.queries", "users answered through IVF retrieval")
        self._ctr_candidates = registry.counter(
            "ann.ivf.candidates",
            "candidate score slots assembled (sum of per-user "
            "candidate-set widths)")

    #: distinct (k, nprobe, filter_seen) routing tables kept per index
    MAX_ROUTING_TABLES = 8

    @property
    def table_bytes(self) -> int:
        """Bytes held by quantizer, lists and cached signature panels."""
        return (self.data.table_bytes
                + sum(p.nbytes for p in self.data._panels.values()))

    # ------------------------------------------------------------------
    def topk(self, user_ids, k: int = 10,
             filter_seen: bool = True) -> TopKResult:
        """Rank each user's candidate set and keep the top ``k``.

        Same request semantics as
        :meth:`repro.serve.index.TopKIndex.topk`; the returned scores
        are exact panel-GEMM scores of the candidate items, so they are
        directly comparable to (and with ``nprobe == nlist``,
        bit-identical to) the exact index's scores.
        """
        users = np.atleast_1d(np.asarray(user_ids, dtype=np.int64))
        if users.ndim != 1:
            raise ValueError(f"user_ids must be 1-D, got shape {users.shape}")
        n_users = self.snapshot.manifest.num_users
        if len(users) and (users.min() < 0 or users.max() >= n_users):
            raise ValueError(f"user ids must lie in [0, {n_users})")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        k = min(k, self.data.num_items)
        out_items = np.empty((len(users), k), dtype=np.int64)
        out_scores = np.empty((len(users), k), dtype=np.float64)
        for lo in range(0, len(users), self.chunk_users):
            chunk = users[lo:lo + self.chunk_users]
            items, scores = self._chunk_topk(chunk, k, filter_seen)
            out_items[lo:lo + len(chunk)] = items
            out_scores[lo:lo + len(chunk)] = scores
        return TopKResult(user_ids=users, items=out_items, scores=out_scores,
                          k=k, filtered_seen=filter_seen)

    # ------------------------------------------------------------------
    def _refreshed_data(self, snapshot: EmbeddingSnapshot,
                        staleness_threshold: float | None,
                        recluster_lists: int):
        """Incremental index data for a new snapshot generation.

        Returns ``(data, code_map, items_ready)``; ``code_map`` composes
        the posting remap with any partial re-clustering, so subclasses
        carrying per-posting payloads (PQ codes) know exactly which
        postings survived untouched.
        """
        from repro.serve.delta import item_transition
        old_to_new, added, changed = item_transition(self.snapshot, snapshot)
        items_ready = scoring_ready_items(np.asarray(snapshot.items),
                                          snapshot.scoring)
        data, code_map = self.data.updated(
            old_to_new, added, items_ready, snapshot.manifest.num_items,
            changed=changed)
        if (staleness_threshold is not None
                and data.staleness(items_ready) > staleness_threshold):
            data, remap = data.reclustered(items_ready, lists=recluster_lists)
            code_map = np.where(remap >= 0,
                                code_map[np.maximum(remap, 0)], -1)
        return data, code_map, items_ready

    def refreshed(self, snapshot: EmbeddingSnapshot, *,
                  staleness_threshold: float | None = 0.5,
                  recluster_lists: int = 1) -> "IVFFlatIndex":
        """Incrementally rebuilt index serving a new snapshot generation.

        Posting lists are maintained in place from the dense-id
        transition between the generations (deletes dropped, inserts
        filed under their nearest centroids, upserts left in their old
        lists); when the :meth:`IVFIndexData.staleness` meter crosses
        ``staleness_threshold`` the ``recluster_lists`` worst lists are
        partially re-clustered.  Pass ``staleness_threshold=None`` to
        never re-cluster.  The original index is untouched — refresh is
        a swap, not a mutation.
        """
        data, _, _ = self._refreshed_data(snapshot, staleness_threshold,
                                          recluster_lists)
        return type(self)(snapshot, data,
                          nprobe=min(self.nprobe, data.nlist),
                          chunk_users=self.chunk_users,
                          panel_width=self.panel_width, routed=self.routed)

    def _routing_for(self, k: int, filter_seen: bool) -> "_RoutingTable":
        # the snapshot version is part of the key so a refresh (which
        # swaps the snapshot a service points at) can never resolve a
        # user through the previous generation's probe routing
        key = (self.snapshot.version, k, self.nprobe, filter_seen)
        table = self._routing.get(key)
        if table is None:
            table = _RoutingTable.build(self, k, filter_seen)
            while len(self._routing) >= self.MAX_ROUTING_TABLES:
                self._routing.pop(next(iter(self._routing)))
            self._routing[key] = table
        return table

    def _chunk_topk(self, users: np.ndarray, k: int, filter_seen: bool
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Score one user chunk: plan → assemble → mask → rank.

        Rows are processed in **group-contiguous order** (users of one
        signature occupy a contiguous slice of the score block, groups
        sorted by candidate count), so assembling the block is plain
        slice copies and ranking can run per width bucket — the final
        results are scattered back to request order at the end.
        """
        tracer = get_tracer()
        with tracer.span("ann.ivf.plan", users=len(users)):
            vectors = scoring_ready_users(self.snapshot.users[users],
                                          self.snapshot.scoring)
            if self.routed:
                table = self._routing_for(k, filter_seen)
                groups, rows_by_group, seen = table.slice(users)
            else:
                plan = self.data.plan(vectors, self._seen_counts[users], k,
                                      self.nprobe, filter_seen,
                                      self.snapshot.scoring)
                groups = plan.signatures
                rows_by_group = plan.rows_by_group()
                seen = (self._dynamic_seen(users, plan) if filter_seen
                        else (np.empty(0, np.int64), np.empty(0, np.int64)))

        score_start = time.perf_counter() if tracer.enabled else None
        live = [(len(self.data.signature(groups[g])[0]), g)
                for g, rows in enumerate(rows_by_group) if len(rows)]
        live.sort()
        m = len(users)
        c_max = live[-1][0] if live else 0
        perm = (np.concatenate([rows_by_group[g] for _, g in live])
                if live else np.empty(0, np.int64))
        inverse = np.empty(m, dtype=np.int64)
        inverse[perm] = np.arange(m, dtype=np.int64)
        vectors = vectors[perm]
        block = np.empty((m, c_max), dtype=np.float64)
        ids_block = np.empty((m, c_max), dtype=np.int64)
        widths = np.empty(m, dtype=np.int64)
        start = 0
        for c_g, g in live:
            ids, panels = self.data.panels_for(groups[g], self._items_ready,
                                               self.panel_width,
                                               self.snapshot.version)
            stop = start + len(rows_by_group[g])
            scores = panel_scores(vectors[start:stop], panels, c_g)
            if self._item_sq is not None:
                # euclidean: same transform as ExactTopKIndex, applied
                # to the candidate columns
                u_sq = (vectors[start:stop] ** 2).sum(axis=1, keepdims=True)
                scores = -(u_sq + self._item_sq[ids] - 2.0 * scores)
            block[start:stop, :c_g] = scores
            block[start:stop, c_g:] = -np.inf
            ids_block[start:stop, :c_g] = ids
            ids_block[start:stop, c_g:] = self.data.num_items
            widths[start:stop] = c_g
            start = stop
        if filter_seen:
            seen_rows, seen_cols = seen
            block[inverse[seen_rows], seen_cols] = -np.inf
        out_items = np.empty((m, k), dtype=np.int64)
        out_scores = np.empty((m, k), dtype=np.float64)
        for lo, hi, width in _width_buckets(widths, c_max):
            top = rank_items(block[lo:hi, :width], k)
            out_items[lo:hi] = np.take_along_axis(ids_block[lo:hi, :width],
                                                  top, axis=1)
            out_scores[lo:hi] = np.take_along_axis(block[lo:hi, :width],
                                                   top, axis=1)
        if score_start is not None:
            tracer.record("ann.ivf.score", score_start,
                          time.perf_counter(), users=m)
        self._ctr_queries.inc(m)
        self._ctr_candidates.inc(int(widths.sum()))
        return out_items[inverse], out_scores[inverse]

    def _dynamic_seen(self, users: np.ndarray, plan: ProbePlan
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Locate each request user's seen items inside their candidates.

        Returns ``(rows, cols)`` such that ``block[rows, cols]`` are the
        seen-item entries to mask.  One flat ``searchsorted`` over the
        chunk: each group's candidate ids are offset into a disjoint
        range, so the concatenation stays sorted and a user's seen ids
        (offset by their group) resolve in a single vectorized pass.
        """
        m = len(users)
        span = self.data.num_items + 1
        group_ids = [self.data.signature(sig)[0] for sig in plan.signatures]
        flat = np.concatenate([ids + g * span
                               for g, ids in enumerate(group_ids)]) \
            if group_ids else np.empty(0, np.int64)
        starts = np.concatenate(
            [np.zeros(1, np.int64),
             np.cumsum([len(i) for i in group_ids])])[:-1]
        indptr = self.snapshot.seen_indptr
        counts = self._seen_counts[users]
        total = int(counts.sum())
        if not total or not len(flat):
            return np.empty(0, np.int64), np.empty(0, np.int64)
        base = np.concatenate(([0], np.cumsum(counts)[:-1]))
        gather = np.repeat(indptr[users] - base, counts) + np.arange(total)
        seen_vals = np.asarray(self.snapshot.seen_items)[gather]
        rows = np.repeat(np.arange(m), counts)
        group_of = plan.group_of_row[rows]
        keys = seen_vals + group_of * span
        pos = np.minimum(np.searchsorted(flat, keys), len(flat) - 1)
        hit = flat[pos] == keys
        return rows[hit], (pos - starts[group_of])[hit]

    def __repr__(self) -> str:
        return (f"IVFFlatIndex(nlist={self.data.nlist}, "
                f"nprobe={self.nprobe}, num_items={self.data.num_items}, "
                f"snapshot={self.snapshot.version!r})")


def _width_buckets(widths: np.ndarray, c_max: int):
    """Split group-sorted rows into at most two ranking buckets.

    ``widths`` is non-decreasing (rows arrive group-contiguous, groups
    sorted by candidate count).  Ranking cost is linear in block width,
    and a few heavily over-fetched users can double ``c_max`` — so rows
    whose width is well below ``c_max`` rank in their own narrower
    bucket.  Yields ``(lo, hi, width)`` row ranges.
    """
    m = len(widths)
    if not m or not c_max:
        return
    cut = int(np.searchsorted(widths, (3 * c_max) // 4, side="right"))
    if 0 < cut < m:
        yield 0, cut, int(widths[cut - 1])
        yield cut, m, c_max
    else:
        yield 0, m, c_max


class _RoutingTable:
    """Per-user probe routing for one ``(k, nprobe, filter_seen)``.

    Stores each user's signature group plus the ``(row offset within
    user, column)`` positions of their seen items inside the
    signature's candidate array, so steady-state serving skips probe
    selection and seen localization entirely.  Derived data — always
    rebuilt from the index, never persisted.
    """

    def __init__(self, signatures: list[tuple[int, ...]],
                 group_of_user: np.ndarray, seen_indptr: np.ndarray,
                 seen_cols: np.ndarray):
        self.signatures = signatures
        self.group_of_user = group_of_user
        self.seen_indptr = seen_indptr
        self.seen_cols = seen_cols

    @classmethod
    def build(cls, index: IVFFlatIndex, k: int,
              filter_seen: bool) -> "_RoutingTable":
        """Plan every user of the snapshot once with the dynamic path."""
        snapshot = index.snapshot
        all_users = np.arange(snapshot.manifest.num_users, dtype=np.int64)
        vectors = scoring_ready_users(np.asarray(snapshot.users),
                                      snapshot.scoring)
        plan = index.data.plan(vectors, index._seen_counts, k,
                               index.nprobe, filter_seen,
                               snapshot.scoring)
        if filter_seen:
            rows, cols = index._dynamic_seen(all_users, plan)
            order = np.argsort(rows, kind="stable")
            rows, cols = rows[order], cols[order]
            counts = np.bincount(rows, minlength=len(all_users))
            indptr = np.concatenate([np.zeros(1, np.int64),
                                     np.cumsum(counts)])
        else:
            indptr = np.zeros(len(all_users) + 1, dtype=np.int64)
            cols = np.empty(0, dtype=np.int64)
        return cls(plan.signatures, plan.group_of_row, indptr, cols)

    def slice(self, users: np.ndarray
              ) -> tuple[list, list[np.ndarray], tuple]:
        """Chunk view: signatures, rows per group, seen mask positions."""
        group_of_row = self.group_of_user[users]
        order = np.argsort(group_of_row, kind="stable")
        bounds = np.searchsorted(group_of_row[order],
                                 np.arange(len(self.signatures) + 1))
        rows_by_group = [order[bounds[g]:bounds[g + 1]]
                         for g in range(len(self.signatures))]
        counts = np.diff(self.seen_indptr)[users]
        total = int(counts.sum())
        if total:
            base = np.concatenate(([0], np.cumsum(counts)[:-1]))
            gather = (np.repeat(self.seen_indptr[users] - base, counts)
                      + np.arange(total))
            seen = (np.repeat(np.arange(len(users)), counts),
                    self.seen_cols[gather])
        else:
            seen = (np.empty(0, np.int64), np.empty(0, np.int64))
        return self.signatures, rows_by_group, seen
