"""Product quantization of IVF residuals, with asymmetric distance tables.

The IVF-PQ variant compresses each inverted-list posting to a few bytes:
the item's **residual** against its list's centroid is cut into ``m``
subvectors, and each subvector is replaced by the index of its nearest
codeword in a per-subspace codebook (trained with the repo's own
k-means).  At search time a user's **asymmetric distance (ADC) tables**
— the inner products between the user's subvectors and every codeword —
turn scoring a posting into ``m`` table lookups plus the centroid term:

    score_adc(u, i in list c)  =  u·centroid_c  +  Σ_s  LUT[s, code[i, s]]

ADC scores select a per-user **shortlist**; the shortlist is then
re-scored *exactly* through the same fixed-shape panel GEMMs as
:class:`~repro.ann.ivf.IVFFlatIndex` (Faiss's ``IndexRefineFlat``
pattern), so the returned scores remain directly comparable to the
exact index.  The PQ approximation therefore only affects *which*
candidates survive to the final ranking — measurable as recall in the
ANN benchmark — never the score values themselves.

At this repo's numpy-only scale the ADC pass is a fidelity model, not a
speedup (BLAS GEMMs outrun table gathers in numpy); what PQ buys here
is the candidate tier's memory story: ``m`` uint8 codes per posting
versus ``dim`` float64 values per item row.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.kmeans import kmeans, sq_dists
from repro.ann.ivf import ANN_PANEL_WIDTH, IVFFlatIndex, IVFIndexData
from repro.eval.metrics import rank_items
from repro.serve.index import panel_scores, scoring_ready_users
from repro.serve.snapshot import EmbeddingSnapshot

__all__ = ["ProductQuantizer", "train_product_quantizer",
           "encode_residuals", "adc_lookup_tables", "carry_codes",
           "IVFPQIndex"]


class ProductQuantizer:
    """Per-subspace codebooks plus the codes of every IVF posting.

    Parameters
    ----------
    codebooks:
        ``(m, ks, dsub)`` float64 — ``ks`` codewords per subspace.
    codes:
        ``(num_postings, m)`` uint8 — one code row per entry of the
        owning index's ``list_items`` (spilled items carry one code per
        list they appear in, each against that list's centroid).
    """

    def __init__(self, codebooks: np.ndarray, codes: np.ndarray):
        codebooks = np.asarray(codebooks, dtype=np.float64)
        codes = np.asarray(codes, dtype=np.uint8)
        if codebooks.ndim != 3:
            raise ValueError("codebooks must be (m, ks, dsub)")
        if codes.ndim != 2 or codes.shape[1] != codebooks.shape[0]:
            raise ValueError("codes must be (num_postings, m)")
        if codes.size and codes.max() >= codebooks.shape[1]:
            raise ValueError("codes reference codewords beyond ks")
        self.codebooks = codebooks
        self.codes = codes

    @property
    def m(self) -> int:
        """Number of subquantizers."""
        return self.codebooks.shape[0]

    @property
    def ks(self) -> int:
        """Codewords per subspace."""
        return self.codebooks.shape[1]

    @property
    def dsub(self) -> int:
        """Dimensions per subvector."""
        return self.codebooks.shape[2]

    @property
    def code_bytes(self) -> int:
        """Bytes held by the posting codes (the compressed catalogue)."""
        return self.codes.nbytes

    @property
    def table_bytes(self) -> int:
        """Bytes held by codes plus codebooks."""
        return self.codes.nbytes + self.codebooks.nbytes

    def decode(self, rows: np.ndarray) -> np.ndarray:
        """Reconstruct residual vectors for posting ``rows``."""
        rows = np.asarray(rows, dtype=np.int64)
        parts = [self.codebooks[s, self.codes[rows, s]]
                 for s in range(self.m)]
        return np.concatenate(parts, axis=-1)


def train_product_quantizer(residuals: np.ndarray, m: int = 8,
                            ks: int = 32, seed: int = 0,
                            n_iter: int = 25) -> np.ndarray:
    """Train per-subspace codebooks on the posting residuals.

    Each of the ``m`` subspaces gets its own k-means over the matching
    residual slice; the rng is derived from ``seed`` and the subspace
    index, so builds are deterministic.  Returns ``(m, ks, dsub)``
    codebooks.
    """
    residuals = np.asarray(residuals, dtype=np.float64)
    n, dim = residuals.shape
    if m <= 0 or dim % m != 0:
        raise ValueError(f"m={m} must divide dim={dim}")
    ks = min(ks, n)
    if ks <= 0:
        raise ValueError("need at least one posting to train on")
    dsub = dim // m
    codebooks = np.empty((m, ks, dsub), dtype=np.float64)
    for s in range(m):
        sub = residuals[:, s * dsub:(s + 1) * dsub]
        codebooks[s], _ = kmeans(sub, ks, n_iter=n_iter,
                                 rng=np.random.default_rng((seed, s)))
    return codebooks


def encode_residuals(residuals: np.ndarray,
                     codebooks: np.ndarray) -> np.ndarray:
    """Nearest-codeword codes for every residual row, ``(n, m)`` uint8."""
    n = len(residuals)
    m, ks, dsub = codebooks.shape
    codes = np.empty((n, m), dtype=np.uint8)
    for s in range(m):
        sub = residuals[:, s * dsub:(s + 1) * dsub]
        codes[:, s] = sq_dists(sub, codebooks[s]).argmin(axis=1)
    return codes


def adc_lookup_tables(vectors: np.ndarray,
                      codebooks: np.ndarray) -> np.ndarray:
    """Inner products of user subvectors with every codeword.

    Returns ``(len(vectors), m, ks)`` — the asymmetric distance tables:
    ``LUT[u, s, code]`` is the contribution of subspace ``s`` to the
    ADC score when a posting stores ``code`` there.
    """
    m, ks, dsub = codebooks.shape
    out = np.empty((len(vectors), m, ks), dtype=np.float64)
    for s in range(m):
        out[:, s] = vectors[:, s * dsub:(s + 1) * dsub] @ codebooks[s].T
    return out


def carry_codes(pq: ProductQuantizer, code_map: np.ndarray,
                data: IVFIndexData,
                items_ready: np.ndarray) -> ProductQuantizer:
    """Posting codes for an incrementally updated index.

    ``code_map[p]`` names the old posting whose stored code new posting
    ``p`` inherits, or ``-1`` when the posting must be re-encoded —
    against the **frozen** ``pq.codebooks`` and the owning list's
    centroid in ``data`` (exactly how a full re-encode of the new state
    would compute it, so carried and fresh codes are indistinguishable).
    """
    code_map = np.asarray(code_map, dtype=np.int64)
    if len(code_map) != len(data.list_items):
        raise ValueError(f"code_map covers {len(code_map)} postings but the "
                         f"index has {len(data.list_items)}")
    codes = np.empty((len(code_map), pq.m), dtype=np.uint8)
    carried = code_map >= 0
    codes[carried] = pq.codes[code_map[carried]]
    fresh = np.flatnonzero(~carried)
    if len(fresh):
        owner = np.repeat(np.arange(data.nlist, dtype=np.int64), data.sizes)
        residuals = (items_ready[data.list_items[fresh]]
                     - data.centroids[owner[fresh]])
        codes[fresh] = encode_residuals(residuals, pq.codebooks)
    return ProductQuantizer(pq.codebooks, codes)


class IVFPQIndex(IVFFlatIndex):
    """IVF-PQ with exact refinement of the ADC shortlist.

    Candidate generation is inherited from :class:`IVFFlatIndex`
    (probed lists, over-fetch, signature grouping).  On top, the ADC
    scores of each user's candidates pick a shortlist of
    ``max(refine * k, k + |seen|)`` postings; everything outside the
    shortlist is masked before the exact-scored block is ranked.  The
    shortlist floor mirrors the over-fetch contract: ``filter_seen``
    masking can never starve the top-``k``.

    Parameters
    ----------
    pq:
        Trained :class:`ProductQuantizer` aligned with ``data``'s
        postings.
    refine:
        Shortlist size as a multiple of ``k`` (Faiss's ``k_factor``).
    """

    kind = "ivfpq"

    def __init__(self, snapshot: EmbeddingSnapshot, data: IVFIndexData,
                 pq: ProductQuantizer, nprobe: int | None = None,
                 refine: int = 4, chunk_users: int = 1024,
                 panel_width: int = ANN_PANEL_WIDTH, routed: bool = True):
        super().__init__(snapshot, data, nprobe=nprobe,
                         chunk_users=chunk_users, panel_width=panel_width,
                         routed=routed)
        if snapshot.scoring == "euclidean":
            raise ValueError(
                "IVF-PQ asymmetric distance tables are inner-product "
                "formulated; euclidean-scoring snapshots are only "
                "supported by the IVF-Flat index")
        if len(pq.codes) != len(data.list_items):
            raise ValueError(
                f"PQ holds {len(pq.codes)} codes but the index has "
                f"{len(data.list_items)} postings")
        if refine < 1:
            raise ValueError(f"refine must be >= 1, got {refine}")
        self.pq = pq
        self.refine = refine
        #: owning list of every posting (the centroid term of ADC)
        self._owner = np.repeat(
            np.arange(data.nlist, dtype=np.int64), data.sizes)

    @property
    def table_bytes(self) -> int:
        """Quantizer + lists + panels + PQ codes and codebooks."""
        return super().table_bytes + self.pq.table_bytes

    # ------------------------------------------------------------------
    def refreshed(self, snapshot: EmbeddingSnapshot, *,
                  staleness_threshold: float | None = 0.5,
                  recluster_lists: int = 1) -> "IVFPQIndex":
        """Incrementally rebuilt IVF-PQ for a new snapshot generation.

        Inverted lists are maintained exactly as in
        :meth:`~repro.ann.ivf.IVFFlatIndex.refreshed`; posting codes
        ride along through the code map — surviving postings keep their
        stored bytes, while inserted items, changed rows and postings
        of re-centered lists are re-encoded against the (frozen)
        codebooks.  Codebooks are never retrained on refresh: code
        maintenance is therefore byte-identical to a full re-encode of
        the new state with the same codebooks, which is the oracle
        ``tests/test_live_index.py`` pins.
        """
        data, code_map, items_ready = self._refreshed_data(
            snapshot, staleness_threshold, recluster_lists)
        pq = carry_codes(self.pq, code_map, data, items_ready)
        return type(self)(snapshot, data, pq,
                          nprobe=min(self.nprobe, data.nlist),
                          refine=self.refine, chunk_users=self.chunk_users,
                          panel_width=self.panel_width, routed=self.routed)

    # ------------------------------------------------------------------
    def _chunk_topk(self, users: np.ndarray, k: int, filter_seen: bool
                    ) -> tuple[np.ndarray, np.ndarray]:
        """IVF-Flat block assembly plus ADC shortlist masking."""
        vectors = scoring_ready_users(self.snapshot.users[users],
                                      self.snapshot.scoring)
        if self.routed:
            table = self._routing_for(k, filter_seen)
            groups, rows_by_group, seen = table.slice(users)
        else:
            plan = self.data.plan(vectors, self._seen_counts[users], k,
                                  self.nprobe, filter_seen,
                                  self.snapshot.scoring)
            groups = plan.signatures
            rows_by_group = plan.rows_by_group()
            seen = (self._dynamic_seen(users, plan) if filter_seen
                    else (np.empty(0, np.int64), np.empty(0, np.int64)))
        centroid_scores = vectors @ self.data.centroids.T
        luts = adc_lookup_tables(vectors, self.pq.codebooks)

        live = [(g, rows) for g, rows in enumerate(rows_by_group)
                if len(rows)]
        c_max = max((len(self.data.signature(groups[g])[0])
                     for g, _ in live), default=0)
        m_users = len(users)
        block = np.empty((m_users, c_max), dtype=np.float64)
        ids_block = np.empty((m_users, c_max), dtype=np.int64)
        for g, rows in live:
            ids, panels = self.data.panels_for(groups[g], self._items_ready,
                                               self.panel_width,
                                               self.snapshot.version)
            posting = self.data.signature(groups[g])[1]
            exact = panel_scores(vectors[rows], panels, len(ids))
            # ADC: centroid term of the owning list + codeword lookups
            adc = centroid_scores[rows][:, self._owner[posting]]
            codes = self.pq.codes[posting]
            group_luts = luts[rows]
            for s in range(self.pq.m):
                adc += group_luts[:, s, codes[:, s]]
            shortlist = min(len(ids),
                            int(max(self.refine * k,
                                    k + (self._seen_counts[users[rows]].max()
                                         if filter_seen else 0))))
            if shortlist < len(ids):
                keep = np.argpartition(-adc, shortlist - 1,
                                       axis=1)[:, :shortlist]
                pruned = np.full_like(exact, -np.inf)
                np.put_along_axis(
                    pruned, keep, np.take_along_axis(exact, keep, axis=1),
                    axis=1)
                exact = pruned
            block[rows, :len(ids)] = exact
            block[rows, len(ids):] = -np.inf
            ids_block[rows, :len(ids)] = ids
            ids_block[rows, len(ids):] = self.data.num_items
        if filter_seen:
            seen_rows, seen_cols = seen
            block[seen_rows, seen_cols] = -np.inf
        top = rank_items(block, k)
        return (np.take_along_axis(ids_block, top, axis=1),
                np.take_along_axis(block, top, axis=1))

    def __repr__(self) -> str:
        return (f"IVFPQIndex(nlist={self.data.nlist}, nprobe={self.nprobe}, "
                f"m={self.pq.m}, ks={self.pq.ks}, refine={self.refine}, "
                f"snapshot={self.snapshot.version!r})")
