"""Build, persist and load ANN index directories.

An *ANN index directory* is the on-disk form of a trained IVF(-PQ)
index, mirroring the :mod:`repro.serve.snapshot` conventions: plain
``.npy`` arrays plus a content-hashed, schema-versioned
``manifest.json``:

* ``centroids.npy`` — ``(nlist, dim)`` coarse-quantizer centroids;
* ``list_indptr.npy`` / ``list_items.npy`` — the inverted lists in CSR
  layout, each list ascending in global item id;
* ``pq_codebooks.npy`` / ``pq_codes.npy`` — only for ``kind="ivfpq"``;
* ``manifest.json`` — an :class:`AnnManifest` recording the build
  parameters, the **source snapshot's content version** (so a service
  can refuse an index built from a different export) and a content
  hash over the arrays (tamper detection under ``verify=True``).

Unlike snapshot manifests, ANN manifests carry **no timestamp**: a
build is a pure function of ``(snapshot, parameters, seed)``, so two
builds with the same inputs are byte-identical on disk — pinned by
``tests/test_ann.py`` and the contract behind ``build-ann --seed``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import numpy as np

from repro.ann.ivf import (ANN_PANEL_WIDTH, IVFFlatIndex, IVFIndexData,
                           assign_lists, train_coarse_quantizer)
from repro.ann.pq import (IVFPQIndex, ProductQuantizer, encode_residuals,
                          train_product_quantizer)
from repro.serve.index import scoring_ready_items
from repro.serve.snapshot import EmbeddingSnapshot, _content_version

__all__ = ["ANN_INDEX_SCHEMA", "ANN_KINDS", "AnnManifest",
           "build_ann_index", "save_ann_index", "load_ann_index",
           "load_ann_generator", "is_ann_index"]

#: Bump when the on-disk layout changes incompatibly.
ANN_INDEX_SCHEMA = "bsl-ann-index/v1"

#: Index kinds the builder/loader understand.
ANN_KINDS = ("ivf", "ivfpq")

_MANIFEST = "manifest.json"
_FILES = {
    "centroids": "centroids.npy",
    "list_indptr": "list_indptr.npy",
    "list_items": "list_items.npy",
}
_PQ_FILES = {
    "pq_codebooks": "pq_codebooks.npy",
    "pq_codes": "pq_codes.npy",
}


@dataclasses.dataclass(frozen=True)
class AnnManifest:
    """Identity card of one ANN index directory.

    ``version`` is a content hash over the arrays and the identity
    fields; ``snapshot_version`` ties the index to the exact snapshot
    export it was trained from.  Deliberately timestamp-free so builds
    are byte-reproducible.
    """

    schema: str
    version: str
    kind: str
    snapshot_version: str
    model: str
    dataset: str
    scoring: str
    dim: int
    num_items: int
    num_users: int
    nlist: int
    spill: int
    default_nprobe: int
    panel_width: int
    train_iters: int
    seed: int
    pq: dict | None = None

    def to_json(self) -> str:
        """Serialize to the ``manifest.json`` on-disk representation."""
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AnnManifest":
        """Parse ``manifest.json`` text, rejecting unknown fields."""
        payload = json.loads(text)
        unknown = set(payload) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(f"ANN manifest has unknown fields "
                             f"{sorted(unknown)}; written by a newer schema?")
        return cls(**payload)


def _identity(manifest: AnnManifest) -> tuple:
    """The manifest fields folded into the content hash."""
    m = manifest
    return (ANN_INDEX_SCHEMA, m.kind, m.snapshot_version, m.scoring, m.dim,
            m.num_items, m.nlist, m.spill, m.default_nprobe, m.panel_width,
            m.train_iters, m.seed)


def _ann_version(arrays: dict[str, np.ndarray], identity: tuple) -> str:
    """Content hash over the index arrays plus the identity fields."""
    ordered = [arrays[name] for name in sorted(arrays)]
    pad = np.empty(0, dtype=np.int64)
    # _content_version hashes exactly four arrays; fold extras pairwise.
    while len(ordered) < 4:
        ordered.append(pad)
    version = _content_version(ordered[0], ordered[1], ordered[2],
                               ordered[3], identity)
    for extra in ordered[4:]:
        version = _content_version(extra, pad, pad, pad,
                                   (version,))
    return version


def build_ann_index(snapshot: EmbeddingSnapshot, out_dir, *,
                    kind: str = "ivf", nlist: int = 16, spill: int = 1,
                    default_nprobe: int = 2,
                    panel_width: int = ANN_PANEL_WIDTH,
                    train_iters: int = 25, seed: int = 0,
                    pq_m: int = 8, pq_ks: int = 32):
    """Train an IVF(-PQ) index from a snapshot and persist it.

    Runs the coarse quantizer on the scoring-ready item table, builds
    the inverted lists (``spill`` nearest lists per item), optionally
    trains PQ codebooks on the posting residuals, writes the index
    directory and returns the loaded serving index.

    Parameters
    ----------
    snapshot:
        Loaded snapshot to train from (also the re-scoring source).
    out_dir:
        Target directory (created if missing; files are overwritten).
    kind:
        ``"ivf"`` (flat re-scoring only) or ``"ivfpq"`` (ADC shortlist
        + exact refinement).
    nlist, spill, default_nprobe, panel_width, train_iters:
        Index geometry; see :mod:`repro.ann.ivf`.
    seed:
        Seeds every k-means involved; same snapshot + same parameters +
        same seed ⇒ byte-identical directory.
    pq_m, pq_ks:
        Subquantizer count / codewords per subspace (``kind="ivfpq"``).
    """
    if kind not in ANN_KINDS:
        raise ValueError(f"unknown ANN index kind {kind!r}; "
                         f"available: {ANN_KINDS}")
    if kind == "ivfpq" and snapshot.manifest.scoring == "euclidean":
        raise ValueError("IVF-PQ does not support euclidean-scoring "
                         "snapshots; use kind='ivf'")
    items_ready = scoring_ready_items(snapshot.items, snapshot.scoring)
    centroids, _ = train_coarse_quantizer(items_ready, nlist, seed=seed,
                                          n_iter=train_iters)
    lists = assign_lists(items_ready, centroids, spill=spill)
    list_indptr = np.concatenate(
        [np.zeros(1, np.int64),
         np.cumsum([len(l) for l in lists])]).astype(np.int64)
    list_items = (np.concatenate(lists) if len(lists)
                  else np.empty(0, np.int64)).astype(np.int64)
    data = IVFIndexData(centroids, list_indptr, list_items,
                        num_items=snapshot.manifest.num_items,
                        default_nprobe=default_nprobe)

    arrays = {"centroids": centroids, "list_indptr": list_indptr,
              "list_items": list_items}
    pq_payload = None
    if kind == "ivfpq":
        owner = np.repeat(np.arange(nlist, dtype=np.int64),
                          np.diff(list_indptr))
        residuals = items_ready[list_items] - centroids[owner]
        codebooks = train_product_quantizer(residuals, m=pq_m, ks=pq_ks,
                                            seed=seed,
                                            n_iter=train_iters)
        codes = encode_residuals(residuals, codebooks)
        arrays["pq_codebooks"] = codebooks
        arrays["pq_codes"] = codes
        pq_payload = {"m": int(codebooks.shape[0]),
                      "ks": int(codebooks.shape[1])}

    m = snapshot.manifest
    manifest = AnnManifest(
        schema=ANN_INDEX_SCHEMA,
        version="",
        kind=kind,
        snapshot_version=snapshot.version,
        model=m.model,
        dataset=m.dataset,
        scoring=m.scoring,
        dim=m.dim,
        num_items=m.num_items,
        num_users=m.num_users,
        nlist=nlist,
        spill=spill,
        default_nprobe=default_nprobe,
        panel_width=panel_width,
        train_iters=train_iters,
        seed=seed,
        pq=pq_payload)
    manifest = dataclasses.replace(
        manifest, version=_ann_version(arrays, _identity(manifest)))
    _write_index(out_dir, manifest, arrays)
    return _make_index(manifest, data, arrays, snapshot)


def _write_index(out_dir, manifest: AnnManifest, arrays: dict) -> None:
    """Persist one ANN index directory (arrays + manifest)."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for stale in _PQ_FILES.values():
        (out_dir / stale).unlink(missing_ok=True)
    for name, fname in _FILES.items():
        np.save(out_dir / fname, arrays[name])
    if manifest.pq is not None:
        for name, fname in _PQ_FILES.items():
            np.save(out_dir / fname, arrays[name])
    (out_dir / _MANIFEST).write_text(manifest.to_json() + "\n")


def save_ann_index(index, out_dir) -> AnnManifest:
    """Persist a live IVF(-PQ) serving index as an index directory.

    The complement of :func:`build_ann_index` for indexes that were not
    trained from scratch — typically the output of
    :meth:`~repro.ann.ivf.IVFFlatIndex.refreshed` after a delta chain.
    The directory round-trips through :func:`load_ann_index` against
    the index's current snapshot.  ``train_iters`` and ``seed`` are
    recorded as ``0``: an incrementally maintained index is a function
    of its maintenance history, not of one k-means run.
    """
    if not isinstance(index, IVFFlatIndex):
        raise TypeError(f"expected an IVF serving index, "
                        f"got {type(index).__name__}")
    data = index.data
    arrays = {"centroids": data.centroids,
              "list_indptr": data.list_indptr,
              "list_items": data.list_items}
    pq_payload = None
    if isinstance(index, IVFPQIndex):
        arrays["pq_codebooks"] = index.pq.codebooks
        arrays["pq_codes"] = index.pq.codes
        pq_payload = {"m": int(index.pq.m), "ks": int(index.pq.ks)}
    m = index.snapshot.manifest
    manifest = AnnManifest(
        schema=ANN_INDEX_SCHEMA,
        version="",
        kind=index.kind,
        snapshot_version=index.snapshot.version,
        model=m.model,
        dataset=m.dataset,
        scoring=m.scoring,
        dim=m.dim,
        num_items=m.num_items,
        num_users=m.num_users,
        nlist=data.nlist,
        spill=data.spill,
        default_nprobe=data.default_nprobe,
        panel_width=index.panel_width,
        train_iters=0,
        seed=0,
        pq=pq_payload)
    manifest = dataclasses.replace(
        manifest, version=_ann_version(arrays, _identity(manifest)))
    _write_index(out_dir, manifest, arrays)
    return manifest


def _make_index(manifest: AnnManifest, data: IVFIndexData,
                arrays: dict, snapshot: EmbeddingSnapshot):
    """Instantiate the serving index matching a manifest's kind."""
    if manifest.kind == "ivfpq":
        pq = ProductQuantizer(arrays["pq_codebooks"], arrays["pq_codes"])
        return IVFPQIndex(snapshot, data, pq,
                          nprobe=manifest.default_nprobe,
                          panel_width=manifest.panel_width)
    return IVFFlatIndex(snapshot, data, nprobe=manifest.default_nprobe,
                        panel_width=manifest.panel_width)


def load_ann_index(path, snapshot: EmbeddingSnapshot, *,
                   verify: bool = False):
    """Open an ANN index directory against its source snapshot.

    Parameters
    ----------
    path:
        Index directory written by :func:`build_ann_index`.
    snapshot:
        The snapshot to serve from; its content version must match the
        manifest's ``snapshot_version`` — an index trained on one
        export must not silently re-score a different one.
    verify:
        Re-hash the arrays and fail loudly on any mismatch with the
        manifest's ``version`` (detects truncated or edited files).
    """
    path = pathlib.Path(path)
    manifest_path = path / _MANIFEST
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no ANN index manifest at {manifest_path}")
    manifest = AnnManifest.from_json(manifest_path.read_text())
    if manifest.schema != ANN_INDEX_SCHEMA:
        raise ValueError(f"ANN index schema {manifest.schema!r} is not "
                         f"{ANN_INDEX_SCHEMA!r}")
    if manifest.kind not in ANN_KINDS:
        raise ValueError(f"unknown ANN index kind {manifest.kind!r}")
    if manifest.snapshot_version != snapshot.version:
        raise ValueError(
            f"ANN index was built from snapshot "
            f"{manifest.snapshot_version!r} but the loaded snapshot is "
            f"{snapshot.version!r}; rebuild with `repro build-ann`")
    arrays = {name: np.load(path / fname, allow_pickle=False)
              for name, fname in _FILES.items()}
    if manifest.kind == "ivfpq":
        arrays.update({name: np.load(path / fname, allow_pickle=False)
                       for name, fname in _PQ_FILES.items()})
    if verify:
        if _ann_version(arrays, _identity(manifest)) != manifest.version:
            raise ValueError(
                f"ANN index content hash does not match manifest version "
                f"{manifest.version!r}; files were modified after build")
    data = IVFIndexData(arrays["centroids"], arrays["list_indptr"],
                        arrays["list_items"],
                        num_items=manifest.num_items,
                        default_nprobe=manifest.default_nprobe)
    return _make_index(manifest, data, arrays, snapshot)


def load_ann_generator(path, *, snapshot=None,
                       verify: bool = False) -> IVFIndexData:
    """Open only the candidate-generation part of an ANN index directory.

    Returns the :class:`~repro.ann.ivf.IVFIndexData` (centroids +
    inverted lists) without binding it to an unsharded snapshot — the
    form the sharded router consumes (``ShardedTopKIndex(ann=...)``),
    where item rows live in the shards and only candidates are needed.

    Parameters
    ----------
    snapshot:
        Optional snapshot-like object (unsharded or sharded) to check
        structural compatibility against: catalogue size, embedding
        dim and scoring must match.  A sharded snapshot's content
        version intentionally differs from the unsharded export the
        index was built from, so only structure is checked here — the
        strict ``snapshot_version`` match lives in
        :func:`load_ann_index`.
    verify:
        Re-hash the directory's arrays (including PQ files for an
        ``ivfpq`` index) and fail loudly on any mismatch with the
        manifest's content ``version``.
    """
    path = pathlib.Path(path)
    manifest_path = path / _MANIFEST
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no ANN index manifest at {manifest_path}")
    manifest = AnnManifest.from_json(manifest_path.read_text())
    if manifest.schema != ANN_INDEX_SCHEMA:
        raise ValueError(f"ANN index schema {manifest.schema!r} is not "
                         f"{ANN_INDEX_SCHEMA!r}")
    if snapshot is not None:
        m = snapshot.manifest
        mismatches = [
            (field, got, want)
            for field, got, want in (("num_items", m.num_items,
                                      manifest.num_items),
                                     ("dim", m.dim, manifest.dim),
                                     ("scoring", m.scoring,
                                      manifest.scoring))
            if got != want]
        if mismatches:
            detail = ", ".join(f"{f}: snapshot has {g!r}, index expects {w!r}"
                               for f, g, w in mismatches)
            raise ValueError(f"ANN index at {path} does not fit this "
                             f"snapshot ({detail})")
    arrays = {name: np.load(path / fname, allow_pickle=False)
              for name, fname in _FILES.items()}
    if verify:
        hashed = dict(arrays)
        if manifest.kind == "ivfpq":
            hashed.update({name: np.load(path / fname, allow_pickle=False)
                           for name, fname in _PQ_FILES.items()})
        if _ann_version(hashed, _identity(manifest)) != manifest.version:
            raise ValueError(
                f"ANN index content hash does not match manifest version "
                f"{manifest.version!r}; files were modified after build")
    return IVFIndexData(arrays["centroids"], arrays["list_indptr"],
                        arrays["list_items"],
                        num_items=manifest.num_items,
                        default_nprobe=manifest.default_nprobe)


def is_ann_index(path) -> bool:
    """True if ``path`` holds an ANN index directory."""
    path = pathlib.Path(path)
    return (path / _MANIFEST).is_file() and (path / "centroids.npy").is_file()
