"""Approximate retrieval: IVF candidate generation over serve snapshots.

The exact serving indexes in :mod:`repro.serve` score every catalogue
item for every request, so per-request cost grows linearly with the
catalogue.  This package adds the retrieval tier of a two-stage
recommender: an **inverted-file (IVF) index** trained from any serve
snapshot with the repo's own k-means
(:func:`repro.analysis.kmeans.kmeans`), which generates a small
per-user *candidate set* and re-scores only those candidates — exactly,
through the same fixed-shape panel GEMMs as the exact index — so the
scores it returns are directly comparable to
:class:`~repro.serve.index.ExactTopKIndex`.

* :mod:`repro.ann.ivf` — coarse quantizer + inverted lists +
  ``nprobe``-controlled search (:class:`IVFIndexData`,
  :class:`IVFFlatIndex`).  Probed lists are grouped by *probe
  signature* so users with the same candidate set share one scoring
  GEMM, and the ``nprobe == nlist`` configuration degenerates to the
  exact index's computation (bit-identical items and scores).
* :mod:`repro.ann.pq` — product-quantized residual codes and
  asymmetric-distance (ADC) tables for the IVF-PQ variant
  (:class:`IVFPQIndex`): ADC picks a shortlist, the shortlist is still
  re-scored exactly (Faiss's refine pattern).
* :mod:`repro.ann.build` — snapshot → on-disk index directory with a
  content-hashed ``manifest.json`` mirroring the
  :mod:`repro.serve.snapshot` conventions
  (:func:`build_ann_index` / :func:`load_ann_index`).

Both index classes implement the :class:`~repro.serve.index.TopKIndex`
protocol, so they drop into
:class:`~repro.serve.service.RecommendationService` unchanged, and
:class:`IVFIndexData` plugs into the sharded router
(:class:`~repro.serve.router.ShardedTopKIndex` ``ann=...``) as a
candidate prefilter.  See ``docs/ann.md`` for the full contract.
"""

from repro.ann.build import (ANN_INDEX_SCHEMA, AnnManifest, build_ann_index,
                             is_ann_index, load_ann_generator,
                             load_ann_index, save_ann_index)
from repro.ann.ivf import (ANN_PANEL_WIDTH, IVFFlatIndex, IVFIndexData,
                           assign_lists, train_coarse_quantizer)
from repro.ann.pq import (IVFPQIndex, ProductQuantizer, adc_lookup_tables,
                          carry_codes, train_product_quantizer)

__all__ = [
    "ANN_INDEX_SCHEMA", "AnnManifest", "build_ann_index", "save_ann_index",
    "load_ann_index", "load_ann_generator", "is_ann_index",
    "ANN_PANEL_WIDTH", "IVFIndexData", "IVFFlatIndex",
    "train_coarse_quantizer", "assign_lists",
    "ProductQuantizer", "train_product_quantizer", "adc_lookup_tables",
    "carry_codes", "IVFPQIndex",
]
