"""Evaluation: ranking metrics, full-ranking evaluator, fairness groups."""

from repro.eval.metrics import (recall_at_k, ndcg_at_k, precision_at_k,
                                hit_rate_at_k, average_precision_at_k,
                                rank_items, overlap_at_k)
from repro.eval.evaluator import (Evaluator, EvalResult, evaluate_model,
                                  evaluate_scores)
from repro.eval.groups import group_ndcg, fairness_gap
from repro.eval.masking import mask_seen_items, seen_items_csr

__all__ = [
    "recall_at_k", "ndcg_at_k", "precision_at_k", "hit_rate_at_k",
    "average_precision_at_k", "rank_items", "overlap_at_k",
    "Evaluator", "EvalResult",
    "evaluate_model", "evaluate_scores", "group_ndcg", "fairness_gap",
    "mask_seen_items", "seen_items_csr",
]
