"""Popularity-group fairness decomposition (Figs. 4a and 5).

The paper divides items into ten popularity groups and reports the
*cumulative per-group NDCG@20*: each user's NDCG contribution is
attributed to the groups of the hit items, revealing whether a loss
favours popular items (popularity bias) or spreads accuracy across the
tail (fairness).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.eval.metrics import rank_items
from repro.models.base import Recommender

__all__ = ["group_ndcg", "fairness_gap"]


def group_ndcg(model: Recommender, dataset: InteractionDataset,
               k: int = 20, n_groups: int = 10,
               batch_users: int = 256) -> np.ndarray:
    """Per-popularity-group NDCG@k, averaged over users.

    For user ``u`` with ideal DCG ``IDCG_u``, a hit at rank ``r`` on an
    item of group ``g`` adds ``(1/log2(r+2)) / IDCG_u`` to group ``g``.
    Summing per user and averaging over users yields a decomposition
    whose total equals the standard NDCG@k.

    Returns
    -------
    Array of shape ``(n_groups,)``, index 0 = least popular decile.
    """
    groups = dataset.popularity_groups(n_groups)
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    test_users = [u for u in range(dataset.num_users)
                  if len(dataset.test_items_by_user[u]) > 0]
    totals = np.zeros(n_groups)
    for lo in range(0, len(test_users), batch_users):
        users = np.asarray(test_users[lo:lo + batch_users])
        scores = model.predict_scores(user_ids=users)
        for row, u in enumerate(users):
            train_items = dataset.train_items_by_user[u]
            if len(train_items):
                scores[row, train_items] = -np.inf
        top = rank_items(scores, k)
        for row, u in enumerate(users):
            relevant = set(dataset.test_items_by_user[u].tolist())
            idcg = discounts[: min(len(relevant), k)].sum()
            for rank, item in enumerate(top[row]):
                if int(item) in relevant:
                    totals[groups[item]] += discounts[rank] / idcg
    return totals / max(1, len(test_users))


def fairness_gap(group_values: np.ndarray) -> float:
    """Scalar unfairness: popular-minus-unpopular NDCG mass.

    Defined as the difference between the NDCG captured by the top 30%
    most popular groups and the bottom 50% groups; smaller (or negative)
    means fairer, mirroring the qualitative reading of Fig. 4a.
    """
    n = len(group_values)
    top = group_values[int(np.ceil(0.7 * n)):].sum()
    bottom = group_values[: n // 2].sum()
    return float(top - bottom)
