"""Ranking metrics: Recall@K, NDCG@K, Precision@K, HitRate@K, MAP@K.

All metrics follow the standard top-K full-ranking protocol the paper
uses (LightGCN's evaluation convention): for each user, rank all items
not in the training set and compare the top K against the held-out test
positives.
"""

from __future__ import annotations

import numpy as np

__all__ = ["recall_at_k", "ndcg_at_k", "precision_at_k", "hit_rate_at_k",
           "average_precision_at_k", "rank_items", "overlap_at_k"]


def rank_items(scores: np.ndarray, k: int) -> np.ndarray:
    """Top-``k`` item indices per row, highest score first.

    Uses argpartition + lexsort for O(n + k log k) per row.

    The ranking is **canonical**: ties are broken by the smaller item
    index, both inside the returned list and at the selection boundary
    (when items outside the top ``k`` tie with the ``k``-th score, the
    smallest indices among the tied items win).  This makes the result a
    pure function of the ``(score, item id)`` pairs, independent of how
    the score row was computed or partitioned — the contract the sharded
    serving router's k-way merge relies on (see ``docs/sharding.md``).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    n = scores.shape[-1]
    k = min(k, n)
    part = np.argpartition(-scores, k - 1, axis=-1)[..., :k]
    row_scores = np.take_along_axis(scores, part, axis=-1)
    # lexsort: primary key score descending, secondary key item id
    # ascending — the canonical within-list order.
    order = np.lexsort((part, -row_scores), axis=-1)
    top = np.take_along_axis(part, order, axis=-1)
    if k == n:
        return top
    # Boundary ties: argpartition picks an arbitrary subset of the items
    # tied with the k-th score, so rows where ties straddle the boundary
    # are patched to keep the smallest tied indices (rare in practice).
    top_scores = np.take_along_axis(row_scores, order, axis=-1)
    kth = top_scores[..., -1:]
    flat_scores = scores.reshape(-1, n)
    flat_top = top.reshape(-1, k)
    flat_kth = kth.reshape(-1, 1)
    tied_total = (flat_scores == flat_kth).sum(axis=-1)
    tied_kept = (top_scores.reshape(-1, k) == flat_kth).sum(axis=-1)
    for row in np.flatnonzero(tied_total > tied_kept):
        kept = int(tied_kept[row])
        tied = np.flatnonzero(flat_scores[row] == flat_kth[row, 0])[:kept]
        flat_top[row, k - kept:] = tied
    return top


def overlap_at_k(a: np.ndarray, b: np.ndarray) -> float:
    """Mean per-row overlap between two ``(m, k)`` top-K item lists.

    ``overlap_at_k(exact, approx)`` with the exact index's lists as
    ``a`` is recall@k of an approximate retrieval path against the
    exact ranking — the acceptance metric shared by the quantized
    index, the sharded router and the ANN tier (see ``docs/ann.md``).
    Row order within the lists does not matter; the denominator is
    ``a``'s row length.
    """
    a = np.atleast_2d(np.asarray(a))
    b = np.atleast_2d(np.asarray(b))
    if len(a) != len(b):
        raise ValueError(f"lists disagree on row count: {len(a)} vs {len(b)}")
    if a.shape[1] == 0:
        raise ValueError("reference lists must have at least one column")
    per_row = [len(set(ra.tolist()) & set(rb.tolist())) / a.shape[1]
               for ra, rb in zip(a, b)]
    return float(np.mean(per_row)) if per_row else 0.0


def _hit_matrix(top_items: np.ndarray, relevant: set[int]) -> np.ndarray:
    return np.fromiter((item in relevant for item in top_items),
                       dtype=np.float64, count=len(top_items))


def recall_at_k(top_items: np.ndarray, relevant) -> float:
    """|top ∩ relevant| / |relevant| for one user."""
    relevant = set(int(i) for i in relevant)
    if not relevant:
        return 0.0
    hits = _hit_matrix(top_items, relevant)
    return float(hits.sum() / len(relevant))


def precision_at_k(top_items: np.ndarray, relevant) -> float:
    relevant = set(int(i) for i in relevant)
    if not relevant:
        return 0.0
    hits = _hit_matrix(top_items, relevant)
    return float(hits.sum() / len(top_items))


def hit_rate_at_k(top_items: np.ndarray, relevant) -> float:
    relevant = set(int(i) for i in relevant)
    if not relevant:
        return 0.0
    return float(any(int(i) in relevant for i in top_items))


def ndcg_at_k(top_items: np.ndarray, relevant) -> float:
    """Binary-relevance NDCG with the ideal DCG truncated at |relevant|."""
    relevant = set(int(i) for i in relevant)
    if not relevant:
        return 0.0
    hits = _hit_matrix(top_items, relevant)
    discounts = 1.0 / np.log2(np.arange(2, len(top_items) + 2))
    dcg = float((hits * discounts).sum())
    ideal_hits = min(len(relevant), len(top_items))
    idcg = float(discounts[:ideal_hits].sum())
    return dcg / idcg


def average_precision_at_k(top_items: np.ndarray, relevant) -> float:
    relevant = set(int(i) for i in relevant)
    if not relevant:
        return 0.0
    hits = _hit_matrix(top_items, relevant)
    if hits.sum() == 0:
        return 0.0
    precisions = np.cumsum(hits) / np.arange(1, len(hits) + 1)
    return float((precisions * hits).sum() / min(len(relevant), len(hits)))
