"""Ranking metrics: Recall@K, NDCG@K, Precision@K, HitRate@K, MAP@K.

All metrics follow the standard top-K full-ranking protocol the paper
uses (LightGCN's evaluation convention): for each user, rank all items
not in the training set and compare the top K against the held-out test
positives.
"""

from __future__ import annotations

import numpy as np

__all__ = ["recall_at_k", "ndcg_at_k", "precision_at_k", "hit_rate_at_k",
           "average_precision_at_k", "rank_items"]


def rank_items(scores: np.ndarray, k: int) -> np.ndarray:
    """Top-``k`` item indices per row, highest score first.

    Uses argpartition + argsort for O(n + k log k) per row.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    k = min(k, scores.shape[-1])
    part = np.argpartition(-scores, k - 1, axis=-1)[..., :k]
    row_scores = np.take_along_axis(scores, part, axis=-1)
    order = np.argsort(-row_scores, axis=-1, kind="stable")
    return np.take_along_axis(part, order, axis=-1)


def _hit_matrix(top_items: np.ndarray, relevant: set[int]) -> np.ndarray:
    return np.fromiter((item in relevant for item in top_items),
                       dtype=np.float64, count=len(top_items))


def recall_at_k(top_items: np.ndarray, relevant) -> float:
    """|top ∩ relevant| / |relevant| for one user."""
    relevant = set(int(i) for i in relevant)
    if not relevant:
        return 0.0
    hits = _hit_matrix(top_items, relevant)
    return float(hits.sum() / len(relevant))


def precision_at_k(top_items: np.ndarray, relevant) -> float:
    relevant = set(int(i) for i in relevant)
    if not relevant:
        return 0.0
    hits = _hit_matrix(top_items, relevant)
    return float(hits.sum() / len(top_items))


def hit_rate_at_k(top_items: np.ndarray, relevant) -> float:
    relevant = set(int(i) for i in relevant)
    if not relevant:
        return 0.0
    return float(any(int(i) in relevant for i in top_items))


def ndcg_at_k(top_items: np.ndarray, relevant) -> float:
    """Binary-relevance NDCG with the ideal DCG truncated at |relevant|."""
    relevant = set(int(i) for i in relevant)
    if not relevant:
        return 0.0
    hits = _hit_matrix(top_items, relevant)
    discounts = 1.0 / np.log2(np.arange(2, len(top_items) + 2))
    dcg = float((hits * discounts).sum())
    ideal_hits = min(len(relevant), len(top_items))
    idcg = float(discounts[:ideal_hits].sum())
    return dcg / idcg


def average_precision_at_k(top_items: np.ndarray, relevant) -> float:
    relevant = set(int(i) for i in relevant)
    if not relevant:
        return 0.0
    hits = _hit_matrix(top_items, relevant)
    if hits.sum() == 0:
        return 0.0
    precisions = np.cumsum(hits) / np.arange(1, len(hits) + 1)
    return float((precisions * hits).sum() / min(len(relevant), len(hits)))
