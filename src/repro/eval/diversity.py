"""Beyond-accuracy metrics: coverage, Gini concentration, novelty.

The fairness analysis of the paper (Lemma 2 / Fig. 4a) is about
popularity bias; these complementary system-level metrics quantify the
same phenomenon over the *recommendation lists* instead of NDCG mass:
a loss that over-recommends popular items has low item coverage, high
Gini concentration and low novelty.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.eval.metrics import rank_items
from repro.models.base import Recommender

__all__ = ["recommendation_counts", "item_coverage", "gini_index",
           "mean_novelty", "diversity_report"]


def recommendation_counts(model: Recommender, dataset: InteractionDataset,
                          k: int = 20, batch_users: int = 256) -> np.ndarray:
    """How often each item appears in users' masked top-``k`` lists."""
    counts = np.zeros(dataset.num_items, dtype=np.int64)
    users = np.arange(dataset.num_users)
    for lo in range(0, len(users), batch_users):
        chunk = users[lo:lo + batch_users]
        scores = model.predict_scores(user_ids=chunk)
        for row, u in enumerate(chunk):
            train_items = dataset.train_items_by_user[u]
            if len(train_items):
                scores[row, train_items] = -np.inf
        top = rank_items(scores, k)
        np.add.at(counts, top.ravel(), 1)
    return counts


def item_coverage(counts: np.ndarray) -> float:
    """Fraction of the catalogue recommended to at least one user."""
    return float((counts > 0).mean())


def gini_index(counts: np.ndarray) -> float:
    """Gini concentration of recommendation exposure (0 = egalitarian).

    Standard mean-absolute-difference formulation over item exposure
    counts; 1 means all exposure goes to one item.
    """
    values = np.sort(np.asarray(counts, dtype=np.float64))
    n = len(values)
    total = values.sum()
    if total == 0:
        return 0.0
    cum = np.cumsum(values)
    # Gini = 1 - 2 * sum((cum - v/2)) / (n * total), standard identity.
    lorenz_area = (cum - values / 2.0).sum() / (n * total)
    return float(1.0 - 2.0 * lorenz_area)


def mean_novelty(counts: np.ndarray, dataset: InteractionDataset) -> float:
    """Exposure-weighted novelty ``-log2 p(item)`` (self-information).

    ``p(item)`` is the item's share of training interactions; rarely
    interacted items are more novel.  Higher = recommendations reach
    deeper into the tail.
    """
    pop = dataset.item_popularity.astype(np.float64)
    probs = (pop + 1.0) / (pop.sum() + dataset.num_items)  # Laplace
    info = -np.log2(probs)
    total = counts.sum()
    if total == 0:
        return 0.0
    return float((counts * info).sum() / total)


def diversity_report(model: Recommender, dataset: InteractionDataset,
                     k: int = 20) -> dict[str, float]:
    """Convenience bundle of the three metrics."""
    counts = recommendation_counts(model, dataset, k=k)
    return {
        f"coverage@{k}": item_coverage(counts),
        f"gini@{k}": gini_index(counts),
        f"novelty@{k}": mean_novelty(counts, dataset),
    }
