"""Batched full-ranking evaluation with train-item masking.

This is the measurement harness behind every number reported in the
paper's tables: Recall@20 / NDCG@20 (Table II-IV) plus the alternative
cutoffs of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.eval import metrics as M
from repro.eval.masking import mask_seen_items, seen_items_csr
from repro.models.base import Recommender

__all__ = ["EvalResult", "Evaluator", "evaluate_model", "evaluate_scores"]


@dataclass
class EvalResult:
    """Aggregated metrics plus per-user values for group analyses."""

    metrics: dict[str, float]
    per_user: dict[str, np.ndarray] = field(default_factory=dict)
    evaluated_users: np.ndarray | None = None

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.4f}" for k, v in sorted(self.metrics.items()))
        return f"EvalResult({inner})"


class Evaluator:
    """Full-ranking evaluator.

    Parameters
    ----------
    dataset:
        Provides the train mask and the held-out test positives.
    ks:
        Cutoffs to report; the paper's headline is K=20, Fig. 7 adds
        {5, 10, 15}.
    metric_names:
        Subset of {"recall", "ndcg", "precision", "hit", "map"}.
    batch_users:
        Number of users scored per dense block (memory control).
    chunked:
        Use the vectorized fast path: per chunk of users, one dense
        score block, one ``argpartition`` top-K, and array-level metric
        computation over the whole chunk.  ``chunked=False`` keeps the
        original per-user metric loop as the reference oracle; both
        paths produce identical ranked lists and metric values
        (``tests/test_eval_chunked.py`` enforces this).
    """

    _METRIC_FNS = {
        "recall": M.recall_at_k,
        "ndcg": M.ndcg_at_k,
        "precision": M.precision_at_k,
        "hit": M.hit_rate_at_k,
        "map": M.average_precision_at_k,
    }

    def __init__(self, dataset: InteractionDataset, ks=(20,),
                 metric_names=("recall", "ndcg"), batch_users: int = 256,
                 chunked: bool = True):
        unknown = set(metric_names) - set(self._METRIC_FNS)
        if unknown:
            raise ValueError(f"unknown metrics: {sorted(unknown)}")
        self.dataset = dataset
        self.ks = tuple(sorted(set(int(k) for k in ks)))
        self.metric_names = tuple(metric_names)
        self.batch_users = batch_users
        self.chunked = chunked
        self._test_users = np.array(
            [u for u in range(dataset.num_users)
             if len(dataset.test_items_by_user[u]) > 0], dtype=np.int64)
        #: held-out positive count per test user (vectorized metrics)
        self._num_relevant = np.array(
            [len(dataset.test_items_by_user[u]) for u in self._test_users],
            dtype=np.int64)
        # Flattened train-interaction layout over the test users, so
        # per-chunk masking is two array slices instead of per-user
        # Python concatenation on every evaluate() pass.
        self._train_indptr, self._train_cols = seen_items_csr(
            [dataset.train_items_by_user[u] for u in self._test_users])
        self._test_pos = np.full(dataset.num_users, -1, dtype=np.int64)
        self._test_pos[self._test_users] = np.arange(len(self._test_users))
        # Ranked-list width is fixed: hoist the shared discount/IDCG
        # tables out of the per-chunk loop (IDCG summed exactly like
        # the per-user oracle — np.sum's pairwise order, not cumsum's).
        width = min(max(self.ks), dataset.num_items)
        self._discounts = 1.0 / np.log2(np.arange(2, width + 2))
        self._idcg_table = np.array([self._discounts[:n].sum()
                                     for n in range(1, width + 1)])

    # ------------------------------------------------------------------
    def evaluate(self, model: Recommender) -> EvalResult:
        """Evaluate a model over all users with held-out positives."""
        per_user = {f"{m}@{k}": np.zeros(len(self._test_users))
                    for m in self.metric_names for k in self.ks}
        max_k = max(self.ks)
        for lo in range(0, len(self._test_users), self.batch_users):
            users = self._test_users[lo:lo + self.batch_users]
            scores = model.predict_scores(user_ids=users)
            self._mask_train_items(scores, users)
            top = M.rank_items(scores, max_k)
            if self.chunked:
                self._chunk_metrics(per_user, lo, users, top)
            else:
                for row, u in enumerate(users):
                    relevant = self.dataset.test_items_by_user[u]
                    for k in self.ks:
                        for m in self.metric_names:
                            value = self._METRIC_FNS[m](top[row, :k], relevant)
                            per_user[f"{m}@{k}"][lo + row] = value
        aggregated = {key: float(vals.mean()) for key, vals in per_user.items()}
        return EvalResult(aggregated, per_user=per_user,
                          evaluated_users=self._test_users.copy())

    def _chunk_metrics(self, per_user: dict, lo: int, users: np.ndarray,
                       top: np.ndarray) -> None:
        """Vectorized metrics for one chunk of ranked lists.

        Computes the same per-user formulas as :mod:`repro.eval.metrics`
        but over ``(chunk, K)`` arrays: the hit matrix comes from one
        fancy-indexed lookup into a per-chunk relevance mask instead of
        ``top_k`` Python set probes per user.
        """
        n_rows, width = top.shape
        n_items = self.dataset.num_items
        relevant_mask = np.zeros((n_rows, n_items), dtype=bool)
        for row, u in enumerate(users):
            relevant_mask[row, self.dataset.test_items_by_user[u]] = True
        hits = np.take_along_axis(relevant_mask, top, axis=1).astype(np.float64)
        n_rel = self._num_relevant[lo:lo + n_rows].astype(np.float64)
        discounts = self._discounts
        idcg_table = self._idcg_table
        assert width == len(discounts), "ranked-list width changed?"
        for k in self.ks:
            kk = min(k, n_items)
            hits_k = hits[:, :kk]
            hit_counts = hits_k.sum(axis=1)
            for m in self.metric_names:
                if m == "recall":
                    values = hit_counts / n_rel
                elif m == "precision":
                    values = hit_counts / kk
                elif m == "hit":
                    values = (hit_counts > 0).astype(np.float64)
                elif m == "ndcg":
                    dcg = (hits_k * discounts[:kk]).sum(axis=1)
                    ideal = np.minimum(n_rel, kk).astype(np.int64)
                    values = dcg / idcg_table[ideal - 1]
                else:  # map
                    precisions = (np.cumsum(hits_k, axis=1)
                                  / np.arange(1, kk + 1))
                    values = ((precisions * hits_k).sum(axis=1)
                              / np.minimum(n_rel, kk))
                    values[hit_counts == 0] = 0.0
                per_user[f"{m}@{k}"][lo:lo + n_rows] = values

    def _mask_train_items(self, scores: np.ndarray, users: np.ndarray) -> None:
        """Mask already-seen items with one vectorized scatter per chunk.

        Any set of test users (contiguous or not) hits the precomputed
        flattened layout via :func:`repro.eval.masking.mask_seen_items`
        — the same scatter the serving indexes use; users outside the
        test set fall back to the per-user scatter.
        """
        if not len(users):
            return
        pos = self._test_pos[np.asarray(users, dtype=np.int64)]
        if np.all(pos >= 0):
            mask_seen_items(scores, self._train_indptr, self._train_cols, pos)
            return
        for row, u in enumerate(users):
            items = self.dataset.train_items_by_user[u]
            if len(items):
                scores[row, items] = -np.inf


def evaluate_model(model: Recommender, dataset: InteractionDataset,
                   ks=(20,), metric_names=("recall", "ndcg")) -> EvalResult:
    """One-shot convenience wrapper around :class:`Evaluator`."""
    return Evaluator(dataset, ks=ks, metric_names=metric_names).evaluate(model)


def evaluate_scores(scores: np.ndarray, dataset: InteractionDataset,
                    ks=(20,), metric_names=("recall", "ndcg")) -> EvalResult:
    """Evaluate a precomputed dense score matrix (for tests/baselines)."""

    class _FixedScores(Recommender):
        def __init__(self):
            super().__init__(dataset.num_users, dataset.num_items, dim=1)

        def propagate(self):  # pragma: no cover - not used
            raise NotImplementedError

        def predict_scores(self, user_ids=None):
            if user_ids is None:
                return scores.copy()
            return scores[np.asarray(user_ids, dtype=np.int64)].copy()

    return Evaluator(dataset, ks=ks, metric_names=metric_names).evaluate(
        _FixedScores())
