"""Batched full-ranking evaluation with train-item masking.

This is the measurement harness behind every number reported in the
paper's tables: Recall@20 / NDCG@20 (Table II-IV) plus the alternative
cutoffs of Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.eval import metrics as M
from repro.models.base import Recommender

__all__ = ["EvalResult", "Evaluator", "evaluate_model", "evaluate_scores"]


@dataclass
class EvalResult:
    """Aggregated metrics plus per-user values for group analyses."""

    metrics: dict[str, float]
    per_user: dict[str, np.ndarray] = field(default_factory=dict)
    evaluated_users: np.ndarray | None = None

    def __getitem__(self, key: str) -> float:
        return self.metrics[key]

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.4f}" for k, v in sorted(self.metrics.items()))
        return f"EvalResult({inner})"


class Evaluator:
    """Full-ranking evaluator.

    Parameters
    ----------
    dataset:
        Provides the train mask and the held-out test positives.
    ks:
        Cutoffs to report; the paper's headline is K=20, Fig. 7 adds
        {5, 10, 15}.
    metric_names:
        Subset of {"recall", "ndcg", "precision", "hit", "map"}.
    batch_users:
        Number of users scored per dense block (memory control).
    """

    _METRIC_FNS = {
        "recall": M.recall_at_k,
        "ndcg": M.ndcg_at_k,
        "precision": M.precision_at_k,
        "hit": M.hit_rate_at_k,
        "map": M.average_precision_at_k,
    }

    def __init__(self, dataset: InteractionDataset, ks=(20,),
                 metric_names=("recall", "ndcg"), batch_users: int = 256):
        unknown = set(metric_names) - set(self._METRIC_FNS)
        if unknown:
            raise ValueError(f"unknown metrics: {sorted(unknown)}")
        self.dataset = dataset
        self.ks = tuple(sorted(set(int(k) for k in ks)))
        self.metric_names = tuple(metric_names)
        self.batch_users = batch_users
        self._test_users = np.array(
            [u for u in range(dataset.num_users)
             if len(dataset.test_items_by_user[u]) > 0], dtype=np.int64)

    # ------------------------------------------------------------------
    def evaluate(self, model: Recommender) -> EvalResult:
        """Evaluate a model over all users with held-out positives."""
        per_user = {f"{m}@{k}": np.zeros(len(self._test_users))
                    for m in self.metric_names for k in self.ks}
        max_k = max(self.ks)
        for lo in range(0, len(self._test_users), self.batch_users):
            users = self._test_users[lo:lo + self.batch_users]
            scores = model.predict_scores(user_ids=users)
            self._mask_train_items(scores, users)
            top = M.rank_items(scores, max_k)
            for row, u in enumerate(users):
                relevant = self.dataset.test_items_by_user[u]
                for k in self.ks:
                    for m in self.metric_names:
                        value = self._METRIC_FNS[m](top[row, :k], relevant)
                        per_user[f"{m}@{k}"][lo + row] = value
        aggregated = {key: float(vals.mean()) for key, vals in per_user.items()}
        return EvalResult(aggregated, per_user=per_user,
                          evaluated_users=self._test_users.copy())

    def _mask_train_items(self, scores: np.ndarray, users: np.ndarray) -> None:
        for row, u in enumerate(users):
            train_items = self.dataset.train_items_by_user[u]
            if len(train_items):
                scores[row, train_items] = -np.inf


def evaluate_model(model: Recommender, dataset: InteractionDataset,
                   ks=(20,), metric_names=("recall", "ndcg")) -> EvalResult:
    """One-shot convenience wrapper around :class:`Evaluator`."""
    return Evaluator(dataset, ks=ks, metric_names=metric_names).evaluate(model)


def evaluate_scores(scores: np.ndarray, dataset: InteractionDataset,
                    ks=(20,), metric_names=("recall", "ndcg")) -> EvalResult:
    """Evaluate a precomputed dense score matrix (for tests/baselines)."""

    class _FixedScores(Recommender):
        def __init__(self):
            super().__init__(dataset.num_users, dataset.num_items, dim=1)

        def propagate(self):  # pragma: no cover - not used
            raise NotImplementedError

        def predict_scores(self, user_ids=None):
            if user_ids is None:
                return scores.copy()
            return scores[np.asarray(user_ids, dtype=np.int64)].copy()

    return Evaluator(dataset, ks=ks, metric_names=metric_names).evaluate(
        _FixedScores())
