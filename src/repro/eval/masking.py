"""Seen-item masking shared by evaluation and serving.

Both the offline :class:`~repro.eval.evaluator.Evaluator` and the online
top-K indexes in :mod:`repro.serve` implement the same protocol before
ranking: items a user has already interacted with in the training split
are removed from the candidate set by setting their scores to ``-inf``
(LightGCN's full-ranking convention, Sec. IV of the paper).  This module
is the single implementation of that scatter so the two subsystems can
never drift apart.

The interaction sets are passed in CSR layout — ``indices[indptr[p] :
indptr[p + 1]]`` are the seen items of the entity at *position* ``p`` —
which is exactly how both the evaluator's flattened test-user layout and
the serving snapshot's persisted ``seen_*`` arrays are stored.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mask_seen_items", "seen_items_csr"]


def mask_seen_items(scores: np.ndarray, indptr: np.ndarray,
                    indices: np.ndarray, positions: np.ndarray) -> None:
    """Set ``scores[row, seen(positions[row])] = -inf``, in place.

    Parameters
    ----------
    scores:
        Dense ``(len(positions), n_items)`` score block, mutated in place.
    indptr, indices:
        CSR layout of seen items per position (``indptr`` has one more
        entry than there are positions in the layout).
    positions:
        Row ``r`` of ``scores`` masks the seen set of ``positions[r]``.
        Any integer array — contiguous chunks take a slice fast path,
        arbitrary gathers are still fully vectorized.
    """
    positions = np.asarray(positions, dtype=np.int64)
    if not len(positions):
        return
    counts = indptr[positions + 1] - indptr[positions]
    total = int(counts.sum())
    if total == 0:
        return
    rows = np.repeat(np.arange(len(positions)), counts)
    if np.all(np.diff(positions) == 1):
        cols = indices[indptr[positions[0]]:indptr[positions[-1] + 1]]
    else:
        starts = np.repeat(indptr[positions], counts)
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts,
                                               counts)
        cols = indices[starts + offsets]
    scores[rows, cols] = -np.inf


def seen_items_csr(items_by_user: list[np.ndarray]
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-user item lists into the ``(indptr, indices)`` layout.

    The inverse access pattern is
    ``indices[indptr[u]:indptr[u + 1]] == items_by_user[u]``.
    """
    counts = np.array([len(items) for items in items_by_user],
                      dtype=np.int64)
    indptr = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
    if counts.sum() == 0:
        return indptr, np.empty(0, dtype=np.int64)
    indices = np.concatenate([np.asarray(items, dtype=np.int64)
                              for items in items_by_user if len(items)])
    return indptr, indices
